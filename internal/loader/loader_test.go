package loader

import (
	"testing"

	"hourglass/internal/graph"
	"hourglass/internal/micro"
	"hourglass/internal/partition"
)

func testGraph() *graph.Graph {
	p := graph.DefaultRMAT(12, 33)
	p.Undirected = true
	return graph.RMAT(p)
}

func TestDiskBytes(t *testing.T) {
	m := DefaultModel()
	g := graph.Path(3) // 3 vertices, 4 arcs
	want := 3*m.VertexBytes + 4*m.EdgeBytes
	if got := m.DiskBytes(g); got != want {
		t.Errorf("DiskBytes = %d, want %d", got, want)
	}
}

func TestStreamLoaderScalesWithBytesNotMachines(t *testing.T) {
	m := DefaultModel()
	g := testGraph()
	r2, err := m.Stream(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := m.Stream(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The stream loader is single-node: machine count must not help.
	if r16.Total() < r2.Total()*0.99 {
		t.Errorf("stream loader sped up with machines: %v vs %v", r16.Total(), r2.Total())
	}
}

func TestMicroFasterThanHashFasterThanStream(t *testing.T) {
	m := DefaultModel()
	m.Net.Latency = 0.001 // keep the small test graph bandwidth-bound
	// A uniform graph: datasets on disk are not degree-sorted, so the
	// hash loader's chunks are byte-balanced (RMAT's id-degree
	// correlation would make chunk 0 a shuffle hotspot).
	g := graph.ErdosRenyi(1<<15, 1<<20, 33, true)
	k := 16
	assign := partition.Multilevel{Seed: 1}.Partition(g, k).Assign

	stream, err := m.Stream(g, k)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := m.Hash(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	mic, err := m.Micro(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	if !(mic.Total() < hash.Total() && hash.Total() < stream.Total()) {
		t.Errorf("expected micro < hash < stream, got micro=%v hash=%v stream=%v",
			mic.Total(), hash.Total(), stream.Total())
	}
	// Figure 6 shape: micro is many × faster than stream at k=8.
	if ratio := float64(stream.Total()) / float64(mic.Total()); ratio < 4 {
		t.Errorf("stream/micro ratio = %.1f, want ≥ 4", ratio)
	}
}

func TestMicroSpeedsUpWithMachines(t *testing.T) {
	m := DefaultModel()
	g := testGraph()
	prev := -1.0
	for _, k := range []int{2, 4, 8, 16} {
		assign := partition.Chunked{}.Partition(g, k).Assign
		r, err := m.Micro(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		total := float64(r.Total())
		if prev > 0 && total > prev*1.05 {
			t.Errorf("micro loader slowed down at k=%d: %v > %v", k, total, prev)
		}
		prev = total
	}
}

func TestHashShuffleGrowsWithCut(t *testing.T) {
	m := DefaultModel()
	g := testGraph()
	k := 4
	// Chunked assignment == chunk ownership → zero shuffle.
	aligned := partition.Chunked{}.Partition(g, k).Assign
	r0, err := m.Hash(g, aligned, k)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Shuffle != 0 {
		t.Errorf("aligned hash shuffle = %v, want 0", r0.Shuffle)
	}
	// Hash assignment scatters vertices → heavy shuffle.
	scattered := partition.Hash{}.Partition(g, k).Assign
	r1, err := m.Hash(g, scattered, k)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Shuffle <= r0.Shuffle {
		t.Errorf("scattered shuffle %v not larger than aligned %v", r1.Shuffle, r0.Shuffle)
	}
}

func TestLoadersRejectBadAssignment(t *testing.T) {
	m := DefaultModel()
	g := graph.Path(4)
	if _, err := m.Hash(g, []int32{0}, 2); err == nil {
		t.Error("hash accepted short assignment")
	}
	if _, err := m.Micro(g, []int32{0}, 2); err == nil {
		t.Error("micro accepted short assignment")
	}
}

func TestMicroWithMicroPartitioning(t *testing.T) {
	// End-to-end with the fast-reload machinery: micro partitions
	// clustered to k then loaded.
	m := DefaultModel()
	g := testGraph()
	mp, err := micro.BuildForConfigs(g, partition.Multilevel{Seed: 2}, []int{4, 8, 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{4, 8, 16} {
		va, err := mp.VertexAssignment(k)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Micro(g, va.Assign, k)
		if err != nil {
			t.Fatal(err)
		}
		if r.Total() <= 0 {
			t.Errorf("k=%d: non-positive load time", k)
		}
	}
}

func TestBlockFetchFlowsConservesBytes(t *testing.T) {
	flows := blockFetchFlows(0, 1000)
	var sum int64
	for _, f := range flows {
		sum += f.Bytes
	}
	if sum != 1000 {
		t.Errorf("fetch flows carry %d bytes, want 1000", sum)
	}
	if blockFetchFlows(0, 0) != nil {
		t.Error("zero-byte block should produce no flows")
	}
}
