package runtime_test

// The runtime chaos suite: ≥100 seeded eviction schedules driven
// through real engine executions, with storage faults layered on the
// checkpoint store. Every schedule must either finish with final
// vertex values bit-identical to the uninterrupted canonical reference
// or cleanly report a deadline miss consistent with its own
// accounting — no hangs, no corrupted results. The watchdog and
// restart-budget paths have dedicated deterministic schedules in
// runtime_test.go (wedge programs); this file sweeps the
// market-driven eviction space.

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/engine"
	"hourglass/internal/faultinject"
	"hourglass/internal/obs"
	"hourglass/internal/runtime"
	"hourglass/internal/units"
)

const (
	// runtimeSchedules is sized so the sweep plus the two dedicated
	// wedge schedules stays comfortably above the 100-schedule floor.
	runtimeSchedules = 108
)

// chaosSeedBase shifts every schedule's seed so a nightly soak sweeps
// a fresh range:
//
//	go test ./internal/runtime/ -chaos-seed-base=$(( $(date +%s) / 86400 * 100 ))
var chaosSeedBase = flag.Int64("chaos-seed-base", 0, "offset added to every chaos schedule seed")

func TestRuntimeChaosCoversAHundredSchedules(t *testing.T) {
	if runtimeSchedules < 100 {
		t.Fatalf("runtime chaos suite covers %d schedules, want >= 100", runtimeSchedules)
	}
}

// chaosPolicy derives a storage-fault schedule from one seed,
// sweeping the policy space like the faultinject suite does.
// MaxConsecutive stays below the manager's retry budget so injected
// faults slow the run down (billed as I/O) without failing it.
func chaosPolicy(seed int64) faultinject.Policy {
	rng := rand.New(rand.NewSource(seed))
	return faultinject.Policy{
		Seed:           seed,
		PError:         0.1 + 0.4*rng.Float64(),
		PWriteCorrupt:  0.05 + 0.15*rng.Float64(),
		PReadCorrupt:   0.05 + 0.15*rng.Float64(),
		PTruncate:      0.05 + 0.10*rng.Float64(),
		MaxLatency:     units.Seconds(5 * rng.Float64()),
		MaxConsecutive: 2,
	}
}

// TestChaosEvictionSchedules is the acceptance sweep: real engine
// executions under market-drawn evictions and storage faults.
func TestChaosEvictionSchedules(t *testing.T) {
	apps := []string{"pagerank", "sssp", "wcc"}
	var totalEvictions, totalCheckpoints, lastResorts int
	var injected int64

	for i := 0; i < runtimeSchedules; i++ {
		seed := *chaosSeedBase + int64(5000+i)
		app := apps[i%len(apps)]
		t.Run(fmt.Sprintf("seed=%d/%s", seed, app), func(t *testing.T) {
			h := getHarness(t, app)
			store := faultinject.Wrap(cloud.NewDatastore(), chaosPolicy(seed))
			sink := &listSink{}

			// Draw a start offset across the trace horizon so schedules
			// land on different market weather (calm stretches, spike
			// storms, trace edges).
			rng := rand.New(rand.NewSource(seed * 17))
			span := float64(h.horizon - h.relDl)
			if span < 0 {
				span = 0
			}
			start := units.Seconds(rng.Float64() * span)
			deadline := start + h.relDl

			opts := h.options(t, store, fmt.Sprintf("chaos/%s/%d", app, seed), h.provisioner(t))
			opts.Sink = sink

			rep, err := runtime.Execute(context.Background(), opts, start, deadline)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if !rep.Finished {
				t.Fatal("run did not finish (last-resort fallback must always complete)")
			}
			assertBitIdentical(t, h.ref, rep.Values)
			if rep.MissedDeadline != (rep.Completion > deadline) {
				t.Fatalf("miss flag inconsistent with accounting: missed=%v completion=%v deadline=%v",
					rep.MissedDeadline, rep.Completion, deadline)
			}
			if rep.Restarts > 8 {
				t.Fatalf("restarts %d exceeded the budget", rep.Restarts)
			}

			// The event stream must fold back to the report bit-exactly.
			sum := obs.Summarize(sink.snapshot())
			if sum.CostUSD != float64(rep.Cost) {
				t.Fatalf("folded cost %v != report %v", sum.CostUSD, float64(rep.Cost))
			}
			if sum.Evictions != rep.Evictions || sum.Checkpoints != rep.Checkpoints ||
				sum.Deploys != rep.Reconfigs || sum.Missed != rep.MissedDeadline {
				t.Fatalf("trace fold mismatch: %+v vs report %+v", sum, rep)
			}

			totalEvictions += rep.Evictions
			totalCheckpoints += rep.Checkpoints
			if rep.LastResort {
				lastResorts++
			}
			st := store.Stats()
			injected += st.Errors + st.WriteCorruptions + st.ReadCorruptions + st.Truncations
		})
	}

	// The sweep must actually exercise the recovery machinery: a tame
	// market or a tame store means the suite proves nothing.
	if totalEvictions < 5 {
		t.Errorf("only %d evictions across %d schedules — sweep is too tame", totalEvictions, runtimeSchedules)
	}
	if totalCheckpoints == 0 {
		t.Error("no durable checkpoints across the sweep")
	}
	if injected < int64(runtimeSchedules) {
		t.Errorf("only %d storage faults injected across %d schedules", injected, runtimeSchedules)
	}
	t.Logf("chaos sweep: %d evictions, %d checkpoints, %d last-resort engagements, %d storage faults",
		totalEvictions, totalCheckpoints, lastResorts, injected)
}

// TestChaosEvictionMidSave pins the eviction-during-checkpoint race
// deterministically: a store slow enough that every save overlaps the
// next price crossing forces the rollback path, and the run must still
// finish bit-identical.
func TestChaosEvictionMidSave(t *testing.T) {
	h := getHarness(t, "wcc")
	// Pure latency, no errors: saves take up to 30 virtual seconds,
	// widening the eviction window without failing any operation.
	store := faultinject.Wrap(cloud.NewDatastore(), faultinject.Policy{
		Seed: 77, MaxLatency: 30,
	})
	found := false
	for i := int64(0); i < 24 && !found; i++ {
		rng := rand.New(rand.NewSource(900 + i))
		start := units.Seconds(rng.Float64() * float64(h.horizon-h.relDl))
		opts := h.options(t, store, fmt.Sprintf("midsave/%d", i), h.provisioner(t))
		rep, err := runtime.Execute(context.Background(), opts, start, start+h.relDl)
		if err != nil {
			t.Fatalf("offset %d: %v", i, err)
		}
		if !rep.Finished {
			t.Fatalf("offset %d: did not finish", i)
		}
		assertBitIdentical(t, h.ref, rep.Values)
		if rep.Evictions > 0 {
			found = true
		}
	}
	if !found {
		t.Skip("no eviction landed in 24 offsets — market too calm for this seed")
	}
}

// TestChaosWatchdogTimeBound asserts the wall-clock guarantee the
// watchdog exists for: a wedged Compute may not stall the driver
// longer than roughly watchdog + grace per superstep.
func TestChaosWatchdogTimeBound(t *testing.T) {
	h := getHarness(t, "sssp")
	trips := &atomic.Int64{}
	opts := h.options(t, cloud.NewDatastore(), "bound/sssp", h.provisioner(t))
	opts.NewProgram = func() engine.Program {
		return &wedgeProgram{inner: h.fresh(), at: 2, sleep: 2 * time.Second, trips: trips, max: 1}
	}
	opts.Watchdog = 40 * time.Millisecond
	opts.WatchdogGrace = 40 * time.Millisecond
	opts.Sink = nil

	begin := time.Now()
	rep, err := runtime.Execute(context.Background(), opts, 0, h.relDl)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed > 1500*time.Millisecond {
		t.Fatalf("wedged run held the driver for %v (watchdog 40ms)", elapsed)
	}
	if rep.WatchdogTrips < 1 {
		t.Fatal("watchdog never tripped")
	}
	if !rep.Finished {
		t.Fatal("run did not finish")
	}
	assertBitIdentical(t, h.ref, rep.Values)
}
