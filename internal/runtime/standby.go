// Warm-standby recovery: when the driver learns of an upcoming
// eviction a WarningWindow early — from the market's forecast price
// crossing, or from a launcher that forewarns a scheduled worker death
// — it re-decides the fallback configuration immediately and boots the
// next coordinator listener and worker set *concurrently* with the
// still-running doomed session. The standby workers prefetch the
// newest checkpoint chain into a read-through cache while they wait for
// the coordinator to accept, and when the window also fits one
// checkpoint save the doomed session is forced to seal a final
// checkpoint at the eviction boundary. At the eviction instant the
// driver cuts over: the standby's wait + boot + reload all happened
// inside the window, overlapped with paid-for compute, so the recovery
// downtime on the virtual clock is zero and the resume point is within
// one superstep of the boundary. A standby that cannot be ready in
// time (market capacity, launch failure, eviction landing early) is a
// recorded miss and the driver falls back to the reactive path — the
// run still finishes, just with cold recovery billing.
package runtime

import (
	"context"
	"math"
	"net"

	"hourglass/internal/core"
	"hourglass/internal/obs"
	"hourglass/internal/units"
)

// standbyState is one armed standby. The orchestration goroutine owns
// every field until it closes done; afterwards the driver goroutine
// owns them. A standby that never became launchable leaves ws nil.
type standbyState struct {
	done chan struct{}

	cs      *core.ConfigStats
	avail   units.Seconds // market availability of the standby set
	readyAt units.Seconds // avail + boot + prefetch: earliest cutover
	reload  units.Seconds // prefetch I/O priced into readyAt
	ln      net.Listener
	ws      WorkerSet
	cancel  context.CancelFunc
	attempt int
}

// armStandby wires the warning machinery into a session about to start:
// it projects the interruption boundary (injected market eviction,
// forewarned worker death, whichever lands first), decides whether the
// window fits a final in-window save, and hands the monitor a warning
// trigger that spawns the standby orchestration goroutine. It returns
// the forced-checkpoint superstep for the dist config (0 = none) and
// the armed state (nil = no warning possible for this segment).
func (d *distDriver) armStandby(ctx context.Context, mon *distMonitor, cs *core.ConfigStats, attempt, evictAfter, remSteps int, secPerStep, nextEvict units.Seconds) (int, *standbyState) {
	if d.opts.WarningWindow <= 0 {
		return 0, nil
	}
	// The interruption boundary in session supersteps, and the virtual
	// instant the machines disappear.
	boundary := evictAfter
	evProj := nextEvict
	if ws, ok := d.opts.Launcher.(WarningSource); ok {
		if die := ws.DeathWarning(attempt); die > 0 {
			// The worker dies while computing absolute superstep `die`,
			// so the session completes die-1 supersteps past the durable
			// frontier.
			deathSteps := die - 1 - d.durable
			if deathSteps >= 1 && deathSteps < remSteps && (boundary == 0 || deathSteps < boundary) {
				boundary = deathSteps
				evProj = d.t + units.Seconds(float64(deathSteps)*float64(secPerStep))
			}
		}
	}
	if boundary <= 0 {
		return 0, nil
	}

	warnSteps := int(math.Ceil(float64(d.opts.WarningWindow) / float64(secPerStep)))
	if warnSteps < 1 {
		warnSteps = 1
	}
	warnAfter := boundary - warnSteps
	if warnAfter < 1 {
		warnAfter = 1
	}
	warnAt := evProj - d.opts.WarningWindow
	if warnAt < d.t {
		warnAt = d.t
	}

	// When the window fits one save, force a final checkpoint at the
	// boundary: the standby resumes from the eviction instant itself
	// instead of the last cadence checkpoint.
	forceCkptAt := 0
	projDurable := d.durable
	if d.opts.WarningWindow >= cs.Save {
		forceCkptAt = d.durable + boundary
		projDurable = d.durable + boundary
		if evictAfter > 0 && boundary == evictAfter {
			// Injected eviction: the monitor must let the forced save
			// seal before cancelling. A forewarned death needs no monitor
			// trip — the loss itself ends the session.
			mon.warmBoundary = forceCkptAt
		}
	} else if every := d.opts.CheckpointEvery; every > 0 {
		// Reactive durability: project the last cadence checkpoint that
		// seals strictly before the boundary.
		projDurable = d.durable + (boundary-1)/every*every
	}

	sb := &standbyState{done: make(chan struct{}), attempt: attempt + 1}
	mon.warnAfter = warnAfter
	mon.onWarn = func() {
		go d.startStandby(ctx, sb, cs, warnAt, evProj, projDurable)
	}
	return forceCkptAt, sb
}

// startStandby is the orchestration goroutine behind a fired warning.
// It runs concurrently with the doomed session; the driver goroutine is
// parked inside dist.AcceptAndRun and joins on sb.done before reading
// the report again, so the report mutations here are unsynchronized by
// design. Billing is deferred to cutover/discard time on the driver
// goroutine to keep the EvSpend fold order deterministic.
func (d *distDriver) startStandby(ctx context.Context, sb *standbyState, cur *core.ConfigStats, warnAt, evProj units.Seconds, projDurable int) {
	defer close(sb.done)
	env := d.opts.Env
	wl := workLeft(d.opts.TotalSupersteps, projDurable)
	d.rep.Warnings++
	d.emit(obs.Event{Type: obs.EvWarning, T: float64(warnAt), Job: env.Job.Name,
		Config: cur.Config.ID(), WorkLeft: wl, DurSec: float64(d.opts.WarningWindow)})

	// Re-decide for the post-eviction world: the standby takes over at
	// the projected eviction instant with the projected durable frontier.
	st := core.State{Now: evProj, WorkLeft: wl, Deadline: d.deadline}
	d.rep.Decisions++
	_, cs, err := d.decide(env, st)
	if err != nil {
		d.standbyMiss(warnAt, "", err)
		return
	}
	shards := cs.Config.Count
	avail, err := env.Market.NextAvailable(cs.Config, warnAt)
	if err != nil {
		d.standbyMiss(warnAt, cs.Config.ID(), err)
		return
	}
	var reload units.Seconds
	if projDurable > 0 {
		reload = d.reloadTime(shards)
	} else {
		reload = cs.Load
	}
	readyAt := avail + cs.Boot + reload
	if readyAt > evProj {
		// The fallback machines cannot be up before the primaries die:
		// booting them would buy nothing over reactive recovery.
		d.standbyMiss(warnAt, cs.Config.ID(), nil)
		return
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.standbyMiss(warnAt, cs.Config.ID(), err)
		return
	}
	// The standby outlives the doomed segment's context by design: tie
	// it to the run context and cancel at adoption or discard.
	sbCtx, cancel := context.WithCancel(ctx)
	var ws WorkerSet
	if sl, ok := d.opts.Launcher.(StandbyLauncher); ok {
		ws, err = sl.LaunchStandby(sbCtx, ln.Addr().String(), shards, sb.attempt, d.opts.Job)
	} else {
		ws, err = d.opts.Launcher.Launch(sbCtx, ln.Addr().String(), shards, sb.attempt)
	}
	if err != nil {
		cancel()
		ln.Close()
		d.standbyMiss(warnAt, cs.Config.ID(), err)
		return
	}
	d.emit(obs.Event{Type: obs.EvStandby, T: float64(warnAt), Job: env.Job.Name,
		Config: cs.Config.ID(), WorkLeft: wl, Ready: true})
	sb.cs, sb.avail, sb.readyAt, sb.reload = cs, avail, readyAt, reload
	sb.ln, sb.ws, sb.cancel = ln, ws, cancel
}

// standbyMiss records a standby that never became launchable.
func (d *distDriver) standbyMiss(at units.Seconds, config string, err error) {
	if err != nil {
		d.opts.logf("runtime: dist job %q standby infeasible: %v", d.opts.Env.Job.Name, err)
	}
	d.rep.StandbyMisses++
	d.emit(obs.Event{Type: obs.EvStandby, T: float64(at), Job: d.opts.Env.Job.Name,
		Config: config, Ready: false})
}

// settleStandby decides a launched standby's fate at the eviction that
// ended its segment, at absolute time evTime. Ready in time: bill the
// overlap window on the standby config, record the warm cutover and
// hand the set to the next run-loop iteration. Not ready (or never
// launched): discard.
func (d *distDriver) settleStandby(sb *standbyState, evTime units.Seconds) error {
	if sb == nil || sb.ws == nil {
		return nil // not armed, or the miss was already recorded
	}
	if sb.readyAt > evTime {
		// The eviction landed earlier than projected (a worker death
		// raced the forecast): the standby never got ready.
		return d.discardStandby(sb, evTime)
	}
	if err := d.spend(sb.cs.Config, sb.avail, evTime); err != nil {
		d.teardownStandby(sb)
		return err
	}
	d.rep.IOTime += sb.reload
	d.rep.WarmCutovers++
	d.emit(obs.Event{Type: obs.EvCutover, T: float64(evTime), Job: d.opts.Env.Job.Name,
		Config: sb.cs.Config.ID(), WorkLeft: workLeft(d.opts.TotalSupersteps, d.durable),
		DurSec: 0})
	d.pending = sb
	return nil
}

// discardStandby releases a launched standby that never cut over,
// billing its machines for the time they ran and recording the miss.
func (d *distDriver) discardStandby(sb *standbyState, billTo units.Seconds) error {
	if sb == nil || sb.ws == nil {
		return nil
	}
	d.teardownStandby(sb)
	if billTo > sb.avail {
		if err := d.spend(sb.cs.Config, sb.avail, billTo); err != nil {
			return err
		}
	}
	d.rep.StandbyMisses++
	d.emit(obs.Event{Type: obs.EvStandby, T: float64(billTo), Job: d.opts.Env.Job.Name,
		Config: sb.cs.Config.ID(), Ready: false})
	return nil
}

// teardownStandby releases a standby's processes without accounting —
// the error and cancellation exits, where the trace is already
// incomplete.
func (d *distDriver) teardownStandby(sb *standbyState) {
	if sb == nil || sb.ws == nil {
		return
	}
	sb.cancel()
	sb.ws.Stop()
	sb.ws.Wait()
	sb.ln.Close()
}
