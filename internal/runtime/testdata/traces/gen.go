//go:build ignore

// Regenerates the checked-in r4-family spot-price traces:
//
//	go run internal/runtime/testdata/traces/gen.go
//
// The files mimic an AWS spot-price-history dump for us-east-1: sparse
// "seconds,price" change points at 5-minute granularity, one file per
// instance type, ten days long. They are synthesized offline with the
// repo's own market model (OU log-price + Poisson demand spikes) so
// the soak is deterministic and needs no network, but they flow into
// the runtime through the same cloud.ReadTraceCSV path a real dump
// would.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"hourglass/internal/cloud"
)

func main() {
	dir := filepath.Join("internal", "runtime", "testdata", "traces")
	for _, it := range cloud.Catalogue() {
		tr := cloud.Generate(it, cloud.GenParams{Days: 10, Step: 300, Seed: 20160901})
		path := filepath.Join(dir, it.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "# instance=%s step=%g\n", it.Name, float64(tr.Step))
		prev := ""
		rows := 0
		for i, p := range tr.Prices {
			s := strconv.FormatFloat(p, 'f', 4, 64)
			if s == prev {
				continue
			}
			prev = s
			fmt.Fprintf(w, "%d,%s\n", i*int(tr.Step), s)
			rows++
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d change points over %.0f days\n", path, rows, 10.0)
	}
}
