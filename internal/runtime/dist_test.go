package runtime_test

import (
	"context"
	"errors"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/dist"
	"hourglass/internal/engine"
	"hourglass/internal/obs"
	"hourglass/internal/runtime"
)

// distGraph is the dist-plane input: built identically in every worker
// from the spec, small enough for -race.
var distGraph = dist.GraphSpec{Scale: 8, Seed: 7, Undirected: true, Weighted: true}

var distProgram = dist.ProgramSpec{Name: "pagerank", Iterations: 10}

// distReference runs the uninterrupted single-process engine on the
// spec-built graph: the bit-exact target every runtime-driven dist
// trajectory must reproduce.
func distReference(t *testing.T) engine.Result {
	t.Helper()
	g, err := distGraph.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := distProgram.New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(g, prog, engine.Config{Workers: 4, Canonical: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// onDemandByCount picks the never-evicted configuration with the given
// worker count — the deterministic building block of scripted resize
// trajectories.
func onDemandByCount(t *testing.T, env *core.Env, count int) cloud.Config {
	t.Helper()
	for i := range env.Stats {
		c := env.Stats[i].Config
		if !c.Transient && c.Count == count {
			return c
		}
	}
	t.Fatalf("no on-demand configuration with count %d", count)
	return cloud.Config{}
}

// scriptedProv replays a fixed configuration sequence, one per
// decision, holding the last entry forever.
type scriptedProv struct {
	mu      sync.Mutex
	configs []cloud.Config
	i       int
}

func (p *scriptedProv) Name() string { return "scripted" }

func (p *scriptedProv) Decide(core.State) (core.Decision, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.configs[p.i]
	if p.i < len(p.configs)-1 {
		p.i++
	}
	return core.Decision{Config: c, UseCheckpoints: true}, nil
}

func (h *harness) distOptions(t *testing.T, store cloud.BlobStore, job string, prov core.Provisioner, total int, launcher runtime.DistLauncher) runtime.DistOptions {
	t.Helper()
	return runtime.DistOptions{
		Env:             h.env,
		Prov:            prov,
		Program:         distProgram,
		Graph:           distGraph,
		Store:           store,
		Job:             job,
		Launcher:        launcher,
		TotalSupersteps: total,
		CheckpointEvery: 2,
		BarrierTimeout:  30 * time.Second,
		Logf:            t.Logf,
	}
}

func TestExecuteDistValidatesOptions(t *testing.T) {
	if _, err := runtime.ExecuteDist(context.Background(), runtime.DistOptions{}, 0, 1); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestExecuteDistUninterrupted(t *testing.T) {
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	store := cloud.NewDatastore()
	opts := h.distOptions(t, store, "dist-od", &core.OnDemandOnly{Env: h.env},
		ref.Stats.Supersteps, &runtime.LoopbackLauncher{Store: store, Logf: t.Logf})
	rep, err := runtime.ExecuteDist(context.Background(), opts, 0, h.relDl)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished || rep.MissedDeadline {
		t.Fatalf("on-demand dist run: finished=%v missed=%v completion=%v deadline=%v",
			rep.Finished, rep.MissedDeadline, rep.Completion, h.relDl)
	}
	if rep.Evictions != 0 || rep.Restarts != 0 {
		t.Fatalf("on-demand dist run suffered %d evictions / %d restarts", rep.Evictions, rep.Restarts)
	}
	if len(rep.ShardCounts) != 1 {
		t.Fatalf("ShardCounts = %v, want one deployment", rep.ShardCounts)
	}
	if rep.Cost <= 0 {
		t.Fatalf("cost = %v", rep.Cost)
	}
	assertBitIdentical(t, ref.Values, rep.Values)
	// The cleared namespace is the finish-path contract: a successful
	// run leaves no blobs behind.
	if keys := store.Keys(); len(keys) != 0 {
		t.Fatalf("%d keys survived a successful run: %v", len(keys), keys)
	}
}

// TestExecuteDistKillResizesWorkerCount is the tentpole acceptance
// test: a worker of the first process set (8 workers) is killed
// mid-run, the driver re-decides onto a 4-worker configuration, boots
// a fresh process set that resumes the same blobs at the new shard
// count, and the final values are bit-identical to an uninterrupted
// in-process run.
func TestExecuteDistKillResizesWorkerCount(t *testing.T) {
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	if ref.Stats.Supersteps <= 4 {
		t.Fatalf("reference run too short (%d supersteps) for a kill at superstep 3", ref.Stats.Supersteps)
	}
	store := cloud.NewDatastore()
	sink := &listSink{}
	prov := &scriptedProv{configs: []cloud.Config{
		onDemandByCount(t, h.env, 8),
		onDemandByCount(t, h.env, 4),
	}}
	launcher := &runtime.LoopbackLauncher{
		Store: store,
		ShardOpts: func(attempt, shard int) dist.ShardOptions {
			opts := dist.ShardOptions{Store: store}
			if attempt == 0 && shard == 1 {
				opts.DieAtSuperstep = 3
			}
			return opts
		},
		Logf: t.Logf,
	}
	opts := h.distOptions(t, store, "dist-resize", prov, ref.Stats.Supersteps, launcher)
	opts.Sink = sink
	// A generous deadline keeps the scripted trajectory out of the
	// last-resort fallback.
	rep, err := runtime.ExecuteDist(context.Background(), opts, 0, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished {
		t.Fatal("run did not finish")
	}
	if rep.Evictions != 1 || rep.Restarts != 1 {
		t.Fatalf("evictions=%d restarts=%d, want 1/1", rep.Evictions, rep.Restarts)
	}
	if len(rep.ShardCounts) != 2 || rep.ShardCounts[0] != 8 || rep.ShardCounts[1] != 4 {
		t.Fatalf("ShardCounts = %v, want [8 4]", rep.ShardCounts)
	}
	if rep.Checkpoints == 0 {
		t.Fatal("no durable checkpoints recorded")
	}
	assertBitIdentical(t, ref.Values, rep.Values)

	var deploys, evicts []obs.Event
	for _, e := range sink.snapshot() {
		switch e.Type {
		case obs.EvDeploy:
			deploys = append(deploys, e)
		case obs.EvShardEvict:
			evicts = append(evicts, e)
		}
	}
	if len(deploys) != 2 {
		t.Fatalf("%d deploy events, want 2", len(deploys))
	}
	for i, e := range deploys {
		if e.Proc == "" {
			t.Errorf("deploy %d carries no process identity", i)
		}
		if want := i > 0; e.Reload != want {
			t.Errorf("deploy %d reload=%v, want %v", i, e.Reload, want)
		}
	}
	if len(evicts) != 1 {
		t.Fatalf("%d shard-evict events, want 1", len(evicts))
	}
	if evicts[0].Proc != "goroutine:0.1" {
		t.Errorf("shard-evict proc %q, want the killed worker goroutine:0.1", evicts[0].Proc)
	}
}

// TestExecuteDistSlackAware runs the full paper loop — slack-aware
// provisioner over the seeded market, whatever evictions it injects —
// and demands the trajectory-independent invariant: bit-identical
// final values.
func TestExecuteDistSlackAware(t *testing.T) {
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	store := cloud.NewDatastore()
	opts := h.distOptions(t, store, "dist-sa", h.provisioner(t),
		ref.Stats.Supersteps, &runtime.LoopbackLauncher{Store: store, Logf: t.Logf})
	rep, err := runtime.ExecuteDist(context.Background(), opts, 0, h.relDl)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished {
		t.Fatal("run did not finish")
	}
	if len(rep.ShardCounts) != rep.Reconfigs {
		t.Fatalf("ShardCounts %v but %d reconfigs", rep.ShardCounts, rep.Reconfigs)
	}
	assertBitIdentical(t, ref.Values, rep.Values)
}

// cancelAfterSink cancels a context once it has seen `after` superstep
// events.
type cancelAfterSink struct {
	after  int
	cancel context.CancelFunc

	mu sync.Mutex
	n  int
}

func (s *cancelAfterSink) Emit(e obs.Event) {
	if e.Type != obs.EvSuperstep {
		return
	}
	s.mu.Lock()
	s.n++
	trip := s.n == s.after
	s.mu.Unlock()
	if trip {
		s.cancel()
	}
}

// TestExecuteDistCancelStopsCluster is the cancellation acceptance
// check at the driver level: cancelling the driver context mid-session
// aborts the run — coordinator unwound, every worker goroutine exited
// (the driver waits on the set before returning) — within the barrier
// timeout, and surfaces a context error rather than retrying.
func TestExecuteDistCancelStopsCluster(t *testing.T) {
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	store := cloud.NewDatastore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := h.distOptions(t, store, "dist-cancel", &core.OnDemandOnly{Env: h.env},
		ref.Stats.Supersteps, &runtime.LoopbackLauncher{Store: store, Logf: t.Logf})
	opts.BarrierTimeout = 5 * time.Second
	opts.Sink = &cancelAfterSink{after: 2, cancel: cancel}
	begin := time.Now()
	rep, err := runtime.ExecuteDist(ctx, opts, 0, h.relDl)
	elapsed := time.Since(begin)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled in the chain", err)
	}
	if rep.Finished {
		t.Fatal("cancelled run claims to have finished")
	}
	if elapsed > opts.BarrierTimeout {
		t.Fatalf("teardown took %v, budget %v", elapsed, opts.BarrierTimeout)
	}
}

// buildShardBinaryRT compiles cmd/hourglass-shard for the process
// launcher integration test.
func buildShardBinaryRT(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hourglass-shard")
	cmd := exec.Command("go", "build", "-o", bin, "hourglass/cmd/hourglass-shard")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hourglass-shard: %v\n%s", err, out)
	}
	return bin
}

// TestExecuteDistProcessKill runs the tentpole against real OS worker
// processes: the first process set (4 workers) loses one to an
// injected death, the driver re-provisions an 8-worker process set
// from the shared checkpoint directory, and the result is bit-identical
// to an uninterrupted in-process run. Worker identities in the trace
// are real pids.
func TestExecuteDistProcessKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and compiles a binary")
	}
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	bin := buildShardBinaryRT(t)
	storeDir := t.TempDir()
	store, err := cloud.NewFSStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	sink := &listSink{}
	prov := &scriptedProv{configs: []cloud.Config{
		onDemandByCount(t, h.env, 4),
		onDemandByCount(t, h.env, 8),
	}}
	launcher := &runtime.ProcessLauncher{
		Bin:      bin,
		StoreDir: storeDir,
		ExtraArgs: func(attempt, shard int) []string {
			if attempt == 0 && shard == 0 {
				return []string{"-die-at", strconv.Itoa(3)}
			}
			return nil
		},
	}
	opts := h.distOptions(t, store, "dist-prockill", prov, ref.Stats.Supersteps, launcher)
	opts.Sink = sink
	rep, err := runtime.ExecuteDist(context.Background(), opts, 0, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished {
		t.Fatal("run did not finish")
	}
	if rep.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", rep.Evictions)
	}
	if len(rep.ShardCounts) != 2 || rep.ShardCounts[0] != 4 || rep.ShardCounts[1] != 8 {
		t.Fatalf("ShardCounts = %v, want [4 8]", rep.ShardCounts)
	}
	assertBitIdentical(t, ref.Values, rep.Values)
	for _, e := range sink.snapshot() {
		if e.Type == obs.EvShardEvict && e.Proc == "" {
			t.Errorf("shard-evict event carries no pid: %+v", e)
		}
		if e.Type == obs.EvDeploy && e.Proc == "" {
			t.Errorf("deploy event carries no pids: %+v", e)
		}
	}
}
