package runtime_test

// Warm-standby acceptance tests: forewarned worker deaths and forecast
// market evictions must cut over to a pre-booted standby cluster with
// zero recovery downtime on the virtual clock, a final in-window
// checkpoint at the eviction boundary, and bit-identical results —
// while infeasible standbys fall back to the reactive path and the run
// still finishes.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/dist"
	"hourglass/internal/obs"
	"hourglass/internal/runtime"
	"hourglass/internal/sim"
	"hourglass/internal/units"
)

// transientByCount picks the spot configuration with the given worker
// count — the evictable sibling of onDemandByCount.
func transientByCount(t *testing.T, env *core.Env, count int) cloud.Config {
	t.Helper()
	for i := range env.Stats {
		c := env.Stats[i].Config
		if c.Transient && c.Count == count {
			return c
		}
	}
	t.Fatalf("no transient configuration with count %d", count)
	return cloud.Config{}
}

// statsFor resolves the profiled stats of a configuration.
func statsFor(t *testing.T, env *core.Env, c cloud.Config) *core.ConfigStats {
	t.Helper()
	for i := range env.Stats {
		if env.Stats[i].Config.ID() == c.ID() {
			return &env.Stats[i]
		}
	}
	t.Fatalf("no stats for configuration %s", c.ID())
	return nil
}

// assertStandbyFoldParity folds the event stream and checks every
// warm-standby counter against the report.
func assertStandbyFoldParity(t *testing.T, sink *listSink, rep runtime.Report) obs.Summary {
	t.Helper()
	sum := obs.Summarize(sink.snapshot())
	if sum.CostUSD != float64(rep.Cost) {
		t.Errorf("folded cost %v != report %v", sum.CostUSD, float64(rep.Cost))
	}
	if sum.Warnings != rep.Warnings || sum.WarmCutovers != rep.WarmCutovers ||
		sum.StandbyMisses != rep.StandbyMisses {
		t.Errorf("standby fold mismatch: warnings %d/%d cutovers %d/%d misses %d/%d",
			sum.Warnings, rep.Warnings, sum.WarmCutovers, rep.WarmCutovers,
			sum.StandbyMisses, rep.StandbyMisses)
	}
	if sum.RecoverySec != float64(rep.RecoveryTime) {
		t.Errorf("folded recovery %v != report %v", sum.RecoverySec, float64(rep.RecoveryTime))
	}
	if sum.Evictions != rep.Evictions || sum.Deploys != rep.Reconfigs {
		t.Errorf("fold mismatch: evictions %d/%d deploys %d/%d",
			sum.Evictions, rep.Evictions, sum.Deploys, rep.Reconfigs)
	}
	return sum
}

// TestExecuteDistWarmCutoverOnForewarnedDeath is the tentpole
// acceptance test on the death path: the launcher forewarns that a
// worker of the first deployment (8 shards) dies at superstep 6, so the
// driver arms a standby at the fallback count (4 shards), forces a
// final checkpoint at the boundary (superstep 5 — off the every-2
// cadence, provable only via ForceCheckpointAt), boots and prefetches
// the standby concurrently with the doomed session, and cuts over at
// the loss instant with zero recovery downtime. Delta checkpointing is
// on, so the cutover also proves chained-manifest resume through the
// full runtime path.
func TestExecuteDistWarmCutoverOnForewarnedDeath(t *testing.T) {
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	store := cloud.NewDatastore()
	sink := &listSink{}
	prov := &scriptedProv{configs: []cloud.Config{
		onDemandByCount(t, h.env, 8),
		onDemandByCount(t, h.env, 4),
	}}
	launcher := &runtime.LoopbackLauncher{
		Store: store,
		ShardOpts: func(attempt, shard int) dist.ShardOptions {
			opts := dist.ShardOptions{Store: store}
			if attempt == 0 && shard == 1 {
				opts.DieAtSuperstep = 6
			}
			return opts
		},
		DeathAt: func(attempt int) int {
			if attempt == 0 {
				return 6
			}
			return 0
		},
		Logf: t.Logf,
	}
	opts := h.distOptions(t, store, "sb-death", prov, ref.Stats.Supersteps, launcher)
	opts.Sink = sink
	opts.WarningWindow = 2000
	opts.DeltaChain = 4
	rep, err := runtime.ExecuteDist(context.Background(), opts, 0, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished {
		t.Fatal("run did not finish")
	}
	assertBitIdentical(t, ref.Values, rep.Values)
	if rep.Warnings != 1 || rep.WarmCutovers != 1 || rep.StandbyMisses != 0 {
		t.Fatalf("warnings=%d cutovers=%d misses=%d, want 1/1/0",
			rep.Warnings, rep.WarmCutovers, rep.StandbyMisses)
	}
	if rep.Evictions != 1 || rep.Restarts != 1 {
		t.Fatalf("evictions=%d restarts=%d, want 1/1", rep.Evictions, rep.Restarts)
	}
	if len(rep.ShardCounts) != 2 || rep.ShardCounts[0] != 8 || rep.ShardCounts[1] != 4 {
		t.Fatalf("ShardCounts = %v, want [8 4]", rep.ShardCounts)
	}
	// The whole point: the standby booted inside the warning window, so
	// the eviction cost zero downtime on the virtual clock.
	if rep.RecoveryTime != 0 {
		t.Fatalf("RecoveryTime = %v on a pure warm-cutover run, want 0", rep.RecoveryTime)
	}

	var deploys, cutovers []obs.Event
	forcedSave, deltaSaves := false, 0
	for _, e := range sink.snapshot() {
		switch e.Type {
		case obs.EvDeploy:
			deploys = append(deploys, e)
		case obs.EvCutover:
			cutovers = append(cutovers, e)
		case obs.EvCheckpoint:
			if e.Superstep == 5 {
				forcedSave = true
			}
		case obs.EvDeltaSave:
			deltaSaves++
		}
	}
	if !forcedSave {
		t.Error("no checkpoint sealed at superstep 5: the forced in-window save never happened")
	}
	if deltaSaves < 2 {
		t.Errorf("%d delta saves, want >= 2 (cadence 2,4 full+delta chain before the boundary)", deltaSaves)
	}
	if len(cutovers) != 1 {
		t.Fatalf("%d cutover events, want 1", len(cutovers))
	}
	if len(deploys) != 2 {
		t.Fatalf("%d deploy events, want 2", len(deploys))
	}
	if deploys[1].DurSec != 0 {
		t.Errorf("warm deploy DurSec = %v, want 0 (boot+reload paid inside the window)", deploys[1].DurSec)
	}
	if !deploys[1].Reload {
		t.Error("warm deploy not flagged as a reload")
	}
	// The adopted worker set is the standby launch (deployment 1), not a
	// fresh boot.
	if deploys[1].Proc == "" || deploys[1].Proc[:len("goroutine:1.")] != "goroutine:1." {
		t.Errorf("warm deploy proc %q, want the standby set goroutine:1.*", deploys[1].Proc)
	}
	assertStandbyFoldParity(t, sink, rep)

	if keys := store.Keys(); len(keys) != 0 {
		t.Fatalf("%d keys survived a successful run: %v", len(keys), keys)
	}
}

// TestExecuteDistWarmCutoverOnMarketEviction exercises the forecast
// path: a transient first deployment whose price crossing the evictor
// projects mid-run. The monitor must let the forced boundary checkpoint
// seal before cancelling (warm mode moves the trip from EvSuperstep to
// EvCheckpoint), and the pre-booted on-demand standby takes over at the
// crossing with zero downtime. The test locates a start offset where
// the seeded market evicts the spot cluster a few supersteps in, using
// the driver's own projection arithmetic.
func TestExecuteDistWarmCutoverOnMarketEviction(t *testing.T) {
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	total := ref.Stats.Supersteps
	spot := transientByCount(t, h.env, 8)
	cs := statsFor(t, h.env, spot)
	secPerStep := float64(cs.Exec) / float64(total)
	ev := sim.Evictor{Market: h.env.Market}

	start := units.Seconds(-1)
	boundary := 0
	for i := 0; i < 600; i++ {
		s := units.Seconds(float64(i) * 1800)
		avail, err := h.env.Market.NextAvailable(spot, s)
		if err != nil {
			continue
		}
		readyAt := avail + cs.Boot + cs.Load
		ne := ev.Next(spot, readyAt)
		if math.IsInf(float64(ne), 1) {
			continue
		}
		if k := int(float64(ne-readyAt) / secPerStep); k >= 3 && k < total-1 {
			start, boundary = s, k
			break
		}
	}
	if start < 0 {
		t.Fatal("no start offset puts a price crossing 3..total-2 supersteps into the spot segment")
	}
	t.Logf("start offset %.0fs: spot eviction projected after superstep %d", float64(start), boundary)

	store := cloud.NewDatastore()
	sink := &listSink{}
	prov := &scriptedProv{configs: []cloud.Config{spot, onDemandByCount(t, h.env, 4)}}
	opts := h.distOptions(t, store, "sb-market", prov, total,
		&runtime.LoopbackLauncher{Store: store, Logf: t.Logf})
	opts.Sink = sink
	opts.WarningWindow = 600
	rep, err := runtime.ExecuteDist(context.Background(), opts, start, start+200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished {
		t.Fatal("run did not finish")
	}
	assertBitIdentical(t, ref.Values, rep.Values)
	if rep.Evictions < 1 {
		t.Fatal("projected market eviction never landed")
	}
	if rep.Warnings < 1 || rep.WarmCutovers < 1 {
		t.Fatalf("warnings=%d cutovers=%d, want >= 1 each", rep.Warnings, rep.WarmCutovers)
	}
	if rep.RecoveryTime != 0 {
		t.Fatalf("RecoveryTime = %v, want 0 (every eviction was a warm cutover)", rep.RecoveryTime)
	}
	// Warm mode must have sealed the forced checkpoint at the eviction
	// boundary itself — strictly past what the every-2 cadence alone
	// could guarantee durable.
	sealedAtBoundary := false
	for _, e := range sink.snapshot() {
		if e.Type == obs.EvCheckpoint && e.Superstep == boundary {
			sealedAtBoundary = true
		}
	}
	if !sealedAtBoundary {
		t.Errorf("no checkpoint sealed at the eviction boundary %d: the in-window save was lost", boundary)
	}
	assertStandbyFoldParity(t, sink, rep)
}

// TestExecuteDistStandbyNotReady pins the fallback contract: a warning
// window too short to boot anything (50 virtual seconds vs a ~90 s
// boot) records a standby miss and the driver recovers reactively —
// the run still finishes bit-identically, but the redeploy downtime is
// real and shows up in RecoveryTime.
func TestExecuteDistStandbyNotReady(t *testing.T) {
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	store := cloud.NewDatastore()
	sink := &listSink{}
	prov := &scriptedProv{configs: []cloud.Config{
		onDemandByCount(t, h.env, 8),
		onDemandByCount(t, h.env, 4),
	}}
	launcher := &runtime.LoopbackLauncher{
		Store: store,
		ShardOpts: func(attempt, shard int) dist.ShardOptions {
			opts := dist.ShardOptions{Store: store}
			if attempt == 0 && shard == 1 {
				opts.DieAtSuperstep = 6
			}
			return opts
		},
		DeathAt: func(attempt int) int {
			if attempt == 0 {
				return 6
			}
			return 0
		},
		Logf: t.Logf,
	}
	opts := h.distOptions(t, store, "sb-miss", prov, ref.Stats.Supersteps, launcher)
	opts.Sink = sink
	opts.WarningWindow = 50
	rep, err := runtime.ExecuteDist(context.Background(), opts, 0, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished {
		t.Fatal("run did not finish")
	}
	assertBitIdentical(t, ref.Values, rep.Values)
	if rep.Warnings != 1 || rep.StandbyMisses != 1 || rep.WarmCutovers != 0 {
		t.Fatalf("warnings=%d misses=%d cutovers=%d, want 1/1/0",
			rep.Warnings, rep.StandbyMisses, rep.WarmCutovers)
	}
	if rep.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", rep.Evictions)
	}
	if rep.RecoveryTime <= 0 {
		t.Fatalf("RecoveryTime = %v, want > 0 (reactive redeploy after the miss)", rep.RecoveryTime)
	}
	// Even a missed standby keeps the in-window save: 50 s fits the
	// profiled checkpoint save, so the boundary superstep 5 is durable.
	forcedSave := false
	for _, e := range sink.snapshot() {
		if e.Type == obs.EvCheckpoint && e.Superstep == 5 {
			forcedSave = true
		}
	}
	if !forcedSave {
		t.Error("no checkpoint sealed at superstep 5 despite the window fitting a save")
	}
	assertStandbyFoldParity(t, sink, rep)
}

// TestExecuteDistStandbyThenUnforewarnedLoss chains both recovery
// modes in one run: a forewarned death absorbed by a warm cutover,
// then an unforewarned death of the adopted standby set handled by the
// classic reactive path. The run must survive both and stay
// bit-identical.
func TestExecuteDistStandbyThenUnforewarnedLoss(t *testing.T) {
	h := getHarness(t, "pagerank")
	ref := distReference(t)
	if ref.Stats.Supersteps <= 10 {
		t.Fatalf("reference run too short (%d supersteps) for deaths at 6 and 9", ref.Stats.Supersteps)
	}
	store := cloud.NewDatastore()
	sink := &listSink{}
	prov := &scriptedProv{configs: []cloud.Config{
		onDemandByCount(t, h.env, 8),
		onDemandByCount(t, h.env, 4),
	}}
	launcher := &runtime.LoopbackLauncher{
		Store: store,
		ShardOpts: func(attempt, shard int) dist.ShardOptions {
			opts := dist.ShardOptions{Store: store}
			if attempt == 0 && shard == 1 {
				opts.DieAtSuperstep = 6
			}
			if attempt == 1 && shard == 0 {
				opts.DieAtSuperstep = 9 // the standby set dies too — unforewarned
			}
			return opts
		},
		DeathAt: func(attempt int) int {
			if attempt == 0 {
				return 6
			}
			return 0
		},
		Logf: t.Logf,
	}
	opts := h.distOptions(t, store, "sb-twice", prov, ref.Stats.Supersteps, launcher)
	opts.Sink = sink
	opts.WarningWindow = 2000
	rep, err := runtime.ExecuteDist(context.Background(), opts, 0, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished {
		t.Fatal("run did not finish")
	}
	assertBitIdentical(t, ref.Values, rep.Values)
	if rep.WarmCutovers != 1 || rep.Warnings != 1 {
		t.Fatalf("cutovers=%d warnings=%d, want 1/1", rep.WarmCutovers, rep.Warnings)
	}
	if rep.Evictions != 2 || rep.Restarts != 2 {
		t.Fatalf("evictions=%d restarts=%d, want 2/2", rep.Evictions, rep.Restarts)
	}
	if len(rep.ShardCounts) != 3 {
		t.Fatalf("ShardCounts = %v, want three deployments", rep.ShardCounts)
	}
	if rep.RecoveryTime <= 0 {
		t.Fatalf("RecoveryTime = %v, want > 0 (the second, unforewarned loss recovers cold)", rep.RecoveryTime)
	}
	assertStandbyFoldParity(t, sink, rep)
}

// TestExecuteDistWarmBeatsColdOnCheckedInTraces is the recovery-time
// acceptance check on the checked-in r4 market: the same spot schedule
// run twice from the same start offset — once reactive, once with a
// warning window — and the warm run's recovery downtime must be
// strictly below the cold run's.
func TestExecuteDistWarmBeatsColdOnCheckedInTraces(t *testing.T) {
	h := getSoakHarness(t, "pagerank")
	ref := distReference(t)
	total := ref.Stats.Supersteps
	spot := transientByCount(t, h.env, 8)
	cs := statsFor(t, h.env, spot)
	secPerStep := float64(cs.Exec) / float64(total)
	ev := sim.Evictor{Market: h.env.Market}

	start := units.Seconds(-1)
	for i := 0; i < 600; i++ {
		s := units.Seconds(float64(i) * 1800)
		avail, err := h.env.Market.NextAvailable(spot, s)
		if err != nil {
			continue
		}
		readyAt := avail + cs.Boot + cs.Load
		ne := ev.Next(spot, readyAt)
		if math.IsInf(float64(ne), 1) {
			continue
		}
		if k := int(float64(ne-readyAt) / secPerStep); k >= 3 && k < total-1 {
			start = s
			break
		}
	}
	if start < 0 {
		t.Fatal("checked-in trace offers no start offset with a mid-run spot eviction")
	}

	run := func(job string, window units.Seconds) runtime.Report {
		t.Helper()
		store := cloud.NewDatastore()
		prov := &scriptedProv{configs: []cloud.Config{spot, onDemandByCount(t, h.env, 4)}}
		opts := h.distOptions(t, store, job, prov, total,
			&runtime.LoopbackLauncher{Store: store, Logf: t.Logf})
		opts.WarningWindow = window
		rep, err := runtime.ExecuteDist(context.Background(), opts, start, start+200_000)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Finished {
			t.Fatal("run did not finish")
		}
		assertBitIdentical(t, ref.Values, rep.Values)
		return rep
	}

	cold := run("sb-cold", 0)
	warm := run("sb-warm", 600)
	if cold.Evictions < 1 {
		t.Fatal("cold run saw no eviction — the located offset is stale")
	}
	if cold.RecoveryTime <= 0 {
		t.Fatalf("cold RecoveryTime = %v, want > 0", cold.RecoveryTime)
	}
	if warm.WarmCutovers < 1 {
		t.Fatal("warm run absorbed no eviction via cutover")
	}
	if warm.RecoveryTime >= cold.RecoveryTime {
		t.Fatalf("warm RecoveryTime %v not strictly below cold %v",
			warm.RecoveryTime, cold.RecoveryTime)
	}
	t.Logf("checked-in trace, start %.0fs: cold recovery %.0fs over %d evictions, warm %.0fs with %d cutovers",
		float64(start), float64(cold.RecoveryTime), cold.Evictions,
		float64(warm.RecoveryTime), warm.WarmCutovers)
}

// TestWarmStandbyChaosSchedules sweeps seeded warm-standby schedules:
// slack-aware provisioning over the synthetic market, a forewarned
// death on the first deployment, per-seed warning windows and delta
// chains. Every schedule must finish bit-identical with the event
// stream folding back to the report exactly. Nightly runs rotate
// -chaos-seed-base to sweep fresh windows and death schedules.
func TestWarmStandbyChaosSchedules(t *testing.T) {
	const schedules = 6
	var warnings, cutovers, misses int
	for i := 0; i < schedules; i++ {
		seed := *chaosSeedBase + int64(11_000+i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h := getHarness(t, "pagerank")
			ref := distReference(t)
			rng := rand.New(rand.NewSource(seed))
			store := cloud.NewDatastore()
			sink := &listSink{}
			dieAt := 3 + rng.Intn(6)
			window := units.Seconds(300 + rng.Float64()*1500)
			span := float64(h.horizon - h.relDl)
			if span < 0 {
				span = 0
			}
			start := units.Seconds(rng.Float64() * span)
			launcher := &runtime.LoopbackLauncher{
				Store: store,
				ShardOpts: func(attempt, shard int) dist.ShardOptions {
					opts := dist.ShardOptions{Store: store}
					if attempt == 0 && shard == 0 {
						opts.DieAtSuperstep = dieAt
					}
					return opts
				},
				DeathAt: func(attempt int) int {
					if attempt == 0 {
						return dieAt
					}
					return 0
				},
				Logf: t.Logf,
			}
			opts := h.distOptions(t, store, fmt.Sprintf("sb-chaos/%d", seed),
				h.provisioner(t), ref.Stats.Supersteps, launcher)
			opts.Sink = sink
			opts.WarningWindow = window
			opts.DeltaChain = rng.Intn(5)
			rep, err := runtime.ExecuteDist(context.Background(), opts, start, start+h.relDl)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if !rep.Finished {
				t.Fatal("run did not finish")
			}
			assertBitIdentical(t, ref.Values, rep.Values)
			assertStandbyFoldParity(t, sink, rep)
			warnings += rep.Warnings
			cutovers += rep.WarmCutovers
			misses += rep.StandbyMisses
		})
	}
	if warnings == 0 {
		t.Error("no eviction warnings fired across the sweep — the chaos hook is dead")
	}
	t.Logf("warm-standby chaos: %d warnings, %d cutovers, %d misses across %d schedules",
		warnings, cutovers, misses, schedules)
}
