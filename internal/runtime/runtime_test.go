package runtime_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/engine"
	"hourglass/internal/graph"
	"hourglass/internal/micro"
	"hourglass/internal/obs"
	"hourglass/internal/partition"
	"hourglass/internal/runtime"
	"hourglass/internal/units"
)

// harness bundles everything one app needs to run under the driver:
// the provisioning environment, the offline micro-partitioning and
// the bit-exact uninterrupted reference.
type harness struct {
	kind     hourglass.JobKind
	sys      *hourglass.System
	env      *core.Env
	g        *graph.Graph
	part     *micro.Partitioning
	fresh    func() engine.Program
	total    int       // supersteps of the uninterrupted run
	ref      []float64 // canonical reference values
	relDl    units.Seconds
	horizon  units.Seconds
	baseSeed int64
}

var (
	harnessOnce sync.Once
	harnessMap  map[string]*harness
	harnessErr  error
)

func undirectedRMAT(scale int, seed int64) *graph.Graph {
	p := graph.DefaultRMAT(scale, seed)
	p.Undirected = true
	return graph.RMAT(p)
}

// buildHarnesses constructs the shared System, graph and partitioning
// once; references are canonical so any worker-count trajectory must
// reproduce them bit for bit.
func buildHarnesses() (map[string]*harness, error) {
	sys, err := hourglass.New(hourglass.Options{Seed: 42})
	if err != nil {
		return nil, err
	}
	g := undirectedRMAT(9, 7)
	apps := []struct {
		name  string
		kind  hourglass.JobKind
		fresh func() engine.Program
	}{
		{"pagerank", hourglass.PageRank, func() engine.Program { return &engine.PageRank{Iterations: 10} }},
		{"sssp", hourglass.SSSP, func() engine.Program { return &engine.SSSP{Source: 0} }},
		// WCC runs under the graph-coloring pricing environment — the
		// perfmodel has no WCC calibration and the driver only needs a
		// cost model, not a matching program.
		{"wcc", hourglass.GC, func() engine.Program { return &engine.WCC{} }},
	}
	out := map[string]*harness{}
	var part *micro.Partitioning
	for _, a := range apps {
		env, err := sys.Env(a.kind)
		if err != nil {
			return nil, err
		}
		if part == nil {
			counts := map[int]bool{}
			var workerCounts []int
			for i := range env.Stats {
				if n := env.Stats[i].Config.Count; !counts[n] {
					counts[n] = true
					workerCounts = append(workerCounts, n)
				}
			}
			part, err = micro.BuildForConfigs(g, partition.Hash{}, workerCounts, partition.Multilevel{Seed: 1})
			if err != nil {
				return nil, err
			}
		}
		ref, err := engine.Run(g, a.fresh(), engine.Config{Workers: 4, Canonical: true})
		if err != nil {
			return nil, fmt.Errorf("%s reference: %w", a.name, err)
		}
		relDl, err := sys.DeadlineFor(a.kind, 0.5)
		if err != nil {
			return nil, err
		}
		hz, err := sys.Horizon(a.kind)
		if err != nil {
			return nil, err
		}
		out[a.name] = &harness{
			kind: a.kind, sys: sys, env: env, g: g, part: part,
			fresh: a.fresh, total: ref.Stats.Supersteps, ref: ref.Values,
			relDl: relDl, horizon: hz,
		}
	}
	return out, nil
}

func getHarness(t *testing.T, app string) *harness {
	t.Helper()
	harnessOnce.Do(func() { harnessMap, harnessErr = buildHarnesses() })
	if harnessErr != nil {
		t.Fatalf("harness: %v", harnessErr)
	}
	h, ok := harnessMap[app]
	if !ok {
		t.Fatalf("no harness for app %q", app)
	}
	return h
}

func (h *harness) provisioner(t *testing.T) core.Provisioner {
	t.Helper()
	p, err := h.sys.Provisioner(h.kind, hourglass.StrategyHourglass)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (h *harness) options(t *testing.T, store cloud.BlobStore, job string, prov core.Provisioner) runtime.Options {
	t.Helper()
	return runtime.Options{
		Env:             h.env,
		Prov:            prov,
		Graph:           h.g,
		NewProgram:      h.fresh,
		Part:            h.part,
		Manager:         &engine.CheckpointManager{Store: store, Job: job, Logf: t.Logf},
		TotalSupersteps: h.total,
		CheckpointEvery: 2,
		Canonical:       true,
		Watchdog:        30 * time.Second, // generous: hang guard only
		Logf:            t.Logf,
	}
}

func assertBitIdentical(t *testing.T, ref, got []float64) {
	t.Helper()
	if got == nil {
		t.Fatal("run finished without values")
	}
	for v := range ref {
		if got[v] != ref[v] {
			t.Fatalf("vertex %d diverged: %x != %x", v, got[v], ref[v])
		}
	}
}

// listSink collects events under a mutex (engine supersteps are
// emitted from the engine goroutine, lifecycle events from the driver).
type listSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *listSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *listSink) snapshot() []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.Event(nil), s.events...)
}

func TestExecuteValidatesOptions(t *testing.T) {
	if _, err := runtime.Execute(context.Background(), runtime.Options{}, 0, 1); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestExecuteOnDemandUninterrupted(t *testing.T) {
	h := getHarness(t, "pagerank")
	opts := h.options(t, cloud.NewDatastore(), "od/pagerank", &core.OnDemandOnly{Env: h.env})
	rep, err := runtime.Execute(context.Background(), opts, 0, h.relDl)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Finished || rep.MissedDeadline {
		t.Fatalf("on-demand run: finished=%v missed=%v completion=%v deadline=%v",
			rep.Finished, rep.MissedDeadline, rep.Completion, h.relDl)
	}
	if rep.Evictions != 0 {
		t.Fatalf("on-demand run suffered %d evictions", rep.Evictions)
	}
	if rep.Reconfigs != 1 {
		t.Fatalf("reconfigs = %d, want 1", rep.Reconfigs)
	}
	if rep.Cost <= 0 {
		t.Fatalf("cost = %v", rep.Cost)
	}
	assertBitIdentical(t, h.ref, rep.Values)
}

func TestExecuteSlackAwareFromColdMarket(t *testing.T) {
	for _, app := range []string{"pagerank", "sssp", "wcc"} {
		t.Run(app, func(t *testing.T) {
			h := getHarness(t, app)
			opts := h.options(t, cloud.NewDatastore(), "sa/"+app, h.provisioner(t))
			rep, err := runtime.Execute(context.Background(), opts, 0, h.relDl)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Finished {
				t.Fatal("run did not finish")
			}
			assertBitIdentical(t, h.ref, rep.Values)
			if rep.MissedDeadline != (rep.Completion > h.relDl) {
				t.Fatalf("miss flag inconsistent: missed=%v completion=%v deadline=%v",
					rep.MissedDeadline, rep.Completion, h.relDl)
			}
		})
	}
}

func TestExecuteTraceFoldMatchesReport(t *testing.T) {
	h := getHarness(t, "pagerank")
	sink := &listSink{}
	opts := h.options(t, cloud.NewDatastore(), "fold/pagerank", h.provisioner(t))
	opts.Sink = sink
	rep, err := runtime.Execute(context.Background(), opts, 0, h.relDl)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.Summarize(sink.snapshot())
	if sum.CostUSD != float64(rep.Cost) {
		t.Errorf("folded cost %v != report %v", sum.CostUSD, float64(rep.Cost))
	}
	if sum.Evictions != rep.Evictions {
		t.Errorf("folded evictions %d != report %d", sum.Evictions, rep.Evictions)
	}
	if sum.Checkpoints != rep.Checkpoints {
		t.Errorf("folded checkpoints %d != report %d", sum.Checkpoints, rep.Checkpoints)
	}
	if sum.Deploys != rep.Reconfigs {
		t.Errorf("folded deploys %d != report %d", sum.Deploys, rep.Reconfigs)
	}
	if sum.Decisions != rep.Decisions {
		t.Errorf("folded decisions %d != report %d", sum.Decisions, rep.Decisions)
	}
	if !sum.Finished || sum.Missed != rep.MissedDeadline {
		t.Errorf("folded done marker finished=%v missed=%v, report missed=%v",
			sum.Finished, sum.Missed, rep.MissedDeadline)
	}
}

// wedgeProgram sleeps at a chosen superstep, simulating a stuck
// Compute. Each program instance wedges at most once (an abandoned
// engine goroutine keeps calling Compute after the driver moves on and
// must not burn further wedges), and the shared `trips` counter bounds
// how many instances wedge in total so the test cannot livelock.
type wedgeProgram struct {
	inner engine.Program
	at    int
	sleep time.Duration
	trips *atomic.Int64
	max   int64
	fired atomic.Bool
}

func (w *wedgeProgram) Name() string { return w.inner.Name() }
func (w *wedgeProgram) Init(g *graph.Graph, v graph.VertexID) (float64, bool) {
	return w.inner.Init(g, v)
}
func (w *wedgeProgram) Compute(ctx *engine.Context, v graph.VertexID, msgs []float64) {
	if ctx.Superstep() == w.at && !w.fired.Swap(true) {
		if w.trips.Add(1) <= w.max {
			time.Sleep(w.sleep)
		}
	}
	w.inner.Compute(ctx, v, msgs)
}

// Aggregators forwards the inner program's aggregator declarations
// (PageRank registers "dangling").
func (w *wedgeProgram) Aggregators() []engine.AggregatorSpec {
	if a, ok := w.inner.(engine.Aggregators); ok {
		return a.Aggregators()
	}
	return nil
}

func TestExecuteWatchdogRecoversWedgedRun(t *testing.T) {
	h := getHarness(t, "pagerank")
	trips := &atomic.Int64{}
	opts := h.options(t, cloud.NewDatastore(), "wedge/pagerank", &core.OnDemandOnly{Env: h.env})
	opts.NewProgram = func() engine.Program {
		return &wedgeProgram{inner: h.fresh(), at: 3, sleep: 400 * time.Millisecond, trips: trips, max: 1}
	}
	opts.Watchdog = 50 * time.Millisecond
	opts.WatchdogGrace = 50 * time.Millisecond
	opts.Sink = nil // the abandoned goroutine may emit late; keep it detached

	rep, err := runtime.Execute(context.Background(), opts, 0, h.relDl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WatchdogTrips < 1 {
		t.Fatalf("watchdog never tripped (trips=%d)", rep.WatchdogTrips)
	}
	if rep.Restarts < 1 {
		t.Fatalf("restarts = %d", rep.Restarts)
	}
	if !rep.Finished {
		t.Fatal("wedged run never finished")
	}
	assertBitIdentical(t, h.ref, rep.Values)
}

func TestExecuteRestartBudgetEngagesLastResort(t *testing.T) {
	h := getHarness(t, "pagerank")
	trips := &atomic.Int64{}
	opts := h.options(t, cloud.NewDatastore(), "budget/pagerank", h.provisioner(t))
	// Wedge twice with a budget of one: the first trip spends the
	// budget, the second happens under the last-resort configuration
	// (the wedge is in the program, not the machines) and the third
	// attempt — wedges exhausted — completes there.
	opts.NewProgram = func() engine.Program {
		return &wedgeProgram{inner: h.fresh(), at: 3, sleep: 400 * time.Millisecond, trips: trips, max: 2}
	}
	opts.Watchdog = 50 * time.Millisecond
	opts.WatchdogGrace = 50 * time.Millisecond
	opts.RestartBudget = 1

	rep, err := runtime.Execute(context.Background(), opts, 0, h.relDl)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LastResort {
		t.Fatal("restart budget exhausted but last resort never engaged")
	}
	if rep.WatchdogTrips < 2 {
		t.Fatalf("watchdog trips = %d, want >= 2", rep.WatchdogTrips)
	}
	if !rep.Finished {
		t.Fatal("run never finished")
	}
	assertBitIdentical(t, h.ref, rep.Values)
}

func TestExecuteCancelledContext(t *testing.T) {
	h := getHarness(t, "pagerank")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := h.options(t, cloud.NewDatastore(), "cancel/pagerank", h.provisioner(t))
	if _, err := runtime.Execute(ctx, opts, 0, h.relDl); err == nil {
		t.Fatal("cancelled context did not abort the run")
	}
}
