// Package runtime is the eviction-aware execution driver: it runs real
// engine.Programs under the seeded eviction process the trace-driven
// simulator (internal/sim) replays, closing the loop the paper defends
// end-to-end (§1, Figure 2) — eviction → re-provision → re-partition →
// resume at a different worker count → deadline met.
//
// Where internal/sim evicts abstract work units, Execute injects each
// eviction into a live superstep loop: the in-flight superstep is
// abandoned (context cancellation, engine.ErrInterrupted), the newest
// valid checkpoint is reloaded through engine.CheckpointManager, the
// slack-aware provisioner picks the next configuration given the
// remaining supersteps and remaining slack, micro-partitions are
// re-clustered for the new worker count (micro.Partitioning) with the
// parallel reload priced by internal/simnet, and the run resumes under
// the new engine.Config.Workers. When slack is exhausted — or the
// restart budget is spent — the driver falls back to the last-resort
// on-demand configuration, exactly the paper's §5 guarantee.
//
// Time is split across two clocks. Compute, boot, load and save are
// *virtual* seconds priced by the perfmodel/market, so a multi-hour
// execution drives real supersteps yet accounts like the simulator.
// The watchdog alone is *wall-clock*: it bounds how long a superstep
// may take for real, so a wedged Compute degrades to
// reload-and-reprovision instead of hanging the driver.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"sync/atomic"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/engine"
	"hourglass/internal/graph"
	"hourglass/internal/micro"
	"hourglass/internal/obs"
	"hourglass/internal/sim"
	"hourglass/internal/simnet"
	"hourglass/internal/units"
)

// Options configures one eviction-aware execution.
type Options struct {
	// Env supplies the configuration set, market, eviction traces and
	// per-config stats (required).
	Env *core.Env
	// Prov decides what to run after every eviction and checkpoint
	// boundary (required).
	Prov core.Provisioner
	// Graph is the input graph (required).
	Graph *graph.Graph
	// NewProgram returns a fresh vertex program per (re)start — engine
	// programs may carry per-run state, so each resume gets its own
	// (required).
	NewProgram func() engine.Program
	// Part holds the offline micro-partitioning; every deployment's
	// vertex→worker map comes from Part.VertexAssignment(workers)
	// (required).
	Part *micro.Partitioning
	// Manager persists checkpoints across evictions (required). Its
	// store may be fault-injected; Save/Load times are billed as I/O.
	Manager *engine.CheckpointManager
	// TotalSupersteps is the expected superstep count of an
	// uninterrupted run, the denominator of the work-left model w(t)
	// (required > 0). Programs that halt early just finish sooner;
	// programs that run longer keep w clamped above zero.
	TotalSupersteps int

	// CheckpointEvery checkpoints after this many supersteps when the
	// provisioner asks for checkpointing (0 = derive from the config's
	// Daly interval).
	CheckpointEvery int
	// RestartBudget bounds evictions + watchdog trips before the driver
	// pins the last-resort configuration (0 = 8).
	RestartBudget int
	// Watchdog is the wall-clock budget per superstep; a run that
	// exceeds it is cancelled and redeployed from the last checkpoint
	// (0 = disabled).
	Watchdog time.Duration
	// WatchdogGrace is how long to wait for the cancelled engine to
	// acknowledge before abandoning its goroutine (0 = 100ms).
	WatchdogGrace time.Duration
	// MaxDecisions guards against livelock (0 = 10_000).
	MaxDecisions int
	// Canonical forces order-invariant reductions so final values are
	// bit-identical across any worker-count trajectory (see
	// engine.Config.Canonical). Required for sum-folding programs like
	// PageRank to survive reconfiguration bit-exactly.
	Canonical bool
	// BytesPerVertex sizes the parallel checkpoint reload flows priced
	// by simnet (0 = 64).
	BytesPerVertex int64
	// Net shapes the reload network (zero value = simnet.DefaultConfig).
	Net simnet.Config
	// MaxSupersteps is passed to the engine as its runaway guard
	// (0 = engine default).
	MaxSupersteps int
	// Sink receives the structured event stream: EvDecision per
	// provisioner consultation, EvSpend per billing charge in
	// accumulation order, EvDeploy/EvEvict/EvCheckpoint lifecycle
	// markers, EvSuperstep per engine superstep and a final EvDone.
	// Folding the stream with obs.Summarize reproduces the Report's
	// cost bit-for-bit. Nil disables tracing.
	Sink obs.Sink
	// Logf receives non-fatal diagnostics (nil = standard logger).
	Logf func(format string, args ...any)
}

// Report is the outcome of one eviction-aware execution.
type Report struct {
	// Values are the final vertex values (nil when the run did not
	// finish).
	Values []float64
	// Stats are the engine stats of the final segment.
	Stats engine.Stats
	// Cost is the accumulated machine spend (virtual market pricing).
	Cost units.USD
	// Finished reports whether the job produced output.
	Finished bool
	// MissedDeadline is Finished && Completion > deadline.
	MissedDeadline bool
	// Completion is the absolute virtual finish time.
	Completion units.Seconds
	// IOTime totals checkpoint save/load plus simnet reload seconds.
	IOTime units.Seconds
	// RecoveryTime totals the post-eviction downtime: every reactive
	// reload deploy's wait + boot + load span. Warm cutovers contribute
	// zero — their boot and prefetch overlapped the warning window —
	// so on a fixed trace warm recovery is strictly cheaper than cold
	// whenever at least one cutover lands.
	RecoveryTime units.Seconds

	Evictions     int  // injected evictions suffered
	Reconfigs     int  // deployments (first boot included)
	Checkpoints   int  // durable checkpoints completed
	Decisions     int  // provisioner consultations
	Restarts      int  // evictions + watchdog trips that forced a reload
	WatchdogTrips int  // wall-clock watchdog firings
	Warnings      int  // eviction warnings fired (ExecuteDist with WarningWindow > 0)
	WarmCutovers  int  // evictions absorbed by a ready warm standby
	StandbyMisses int  // standbys armed or booted that never cut over
	LastResort    bool // the last-resort fallback was engaged

	// ShardCounts is the worker count of every deployment in boot
	// order — populated by ExecuteDist, where each entry is one process
	// set; a re-provision after an eviction may change the count
	// mid-trajectory. Execute leaves it nil.
	ShardCounts []int
}

func (o *Options) validate() error {
	switch {
	case o.Env == nil:
		return errors.New("runtime: nil Env")
	case o.Prov == nil:
		return errors.New("runtime: nil Prov")
	case o.Graph == nil:
		return errors.New("runtime: nil Graph")
	case o.NewProgram == nil:
		return errors.New("runtime: nil NewProgram")
	case o.Part == nil:
		return errors.New("runtime: nil Part")
	case o.Manager == nil:
		return errors.New("runtime: nil Manager")
	case o.TotalSupersteps <= 0:
		return fmt.Errorf("runtime: TotalSupersteps = %d", o.TotalSupersteps)
	}
	return nil
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// driver carries the mutable state of one Execute call.
type driver struct {
	opts     *Options
	evictor  sim.Evictor
	deadline units.Seconds
	rep      Report

	t        units.Seconds     // virtual clock
	cur      *core.ConfigStats // live deployment (nil = none)
	bootAt   units.Seconds     // uptime anchor of cur
	assign   []int32           // vertex→worker map of cur
	snapLive *engine.Snapshot  // in-memory snapshot (survives KeepCurrent only)
}

func (d *driver) emit(e obs.Event) {
	if d.opts.Sink != nil {
		d.opts.Sink.Emit(e)
	}
}

// spend bills a machine-time interval on the market and emits the
// matching EvSpend, in accumulation order so obs.Summarize folds the
// trace back to rep.Cost bit-exactly.
func (d *driver) spend(c cloud.Config, from, to units.Seconds) error {
	cost, err := d.opts.Env.Market.Cost(c, from, to)
	if err != nil {
		return err
	}
	d.rep.Cost += cost
	if d.opts.Sink != nil {
		d.opts.Sink.Emit(obs.Event{Type: obs.EvSpend, T: float64(from),
			Config: c.ID(), USD: float64(cost)})
	}
	return nil
}

// workLeft maps completed supersteps to the w(t) ∈ (0,1] fraction the
// provisioner consumes, clamped above zero so a job that outlives its
// superstep estimate still registers as unfinished. Shared by the
// in-process and dist drivers.
func workLeft(total, doneSteps int) float64 {
	w := float64(total-doneSteps) / float64(total)
	if min := 0.5 / float64(total); w < min {
		w = min
	}
	return w
}

func (d *driver) workLeft(doneSteps int) float64 {
	return workLeft(d.opts.TotalSupersteps, doneSteps)
}

// Execute runs the program to completion under injected evictions,
// starting at virtual time start with an absolute deadline. The
// returned Report is meaningful even alongside an error: it carries
// the spend and I/O accumulated before the failure.
func Execute(ctx context.Context, opts Options, start, deadline units.Seconds) (Report, error) {
	if err := opts.validate(); err != nil {
		return Report{}, err
	}
	if opts.RestartBudget <= 0 {
		opts.RestartBudget = 8
	}
	if opts.WatchdogGrace <= 0 {
		opts.WatchdogGrace = 100 * time.Millisecond
	}
	if opts.MaxDecisions <= 0 {
		opts.MaxDecisions = 10_000
	}
	if opts.BytesPerVertex <= 0 {
		opts.BytesPerVertex = 64
	}
	if opts.Net == (simnet.Config{}) {
		opts.Net = simnet.DefaultConfig()
	}
	d := &driver{
		opts:     &opts,
		evictor:  sim.Evictor{Market: opts.Env.Market},
		deadline: deadline,
		t:        start,
	}
	return d.run(ctx)
}

func (d *driver) run(ctx context.Context) (Report, error) {
	env := d.opts.Env
	for {
		d.rep.Decisions++
		if d.rep.Decisions > d.opts.MaxDecisions {
			return d.rep, fmt.Errorf("runtime: exceeded %d decisions (provisioner livelock?)", d.opts.MaxDecisions)
		}
		if err := ctx.Err(); err != nil {
			return d.rep, fmt.Errorf("runtime: cancelled after %d decisions: %w", d.rep.Decisions, err)
		}

		doneSteps := 0
		if d.snapLive != nil {
			doneSteps = d.snapLive.Superstep
		}
		var curCfg *cloud.Config
		uptime := units.Seconds(0)
		if d.cur != nil {
			curCfg = &d.cur.Config
			uptime = d.t - d.bootAt
		}
		st := core.State{Now: d.t, WorkLeft: d.workLeft(doneSteps),
			Deadline: d.deadline, Current: curCfg, Uptime: uptime}

		dec, cs, err := d.decide(env, st)
		if err != nil {
			return d.rep, err
		}

		var nextEvict units.Seconds
		if d.cur == nil || !dec.KeepCurrent || d.cur.Config.ID() != cs.Config.ID() {
			nextEvict, err = d.deploy(cs)
			if err != nil {
				return d.rep, err
			}
		} else {
			// Keep running: refresh the eviction forecast (prices moved
			// on) and reuse the in-memory state.
			nextEvict = d.evictor.Next(cs.Config, d.t)
		}

		done, err := d.segment(ctx, dec, cs, nextEvict)
		if err != nil || done {
			return d.rep, err
		}
	}
}

// decide consults the provisioner — or, once the restart budget is
// spent or slack has run dry, pins the deterministic last-resort
// on-demand configuration with checkpointing off (the §5 fallback: a
// fresh LRC deployment finishes within the remaining horizon by
// construction, so nothing may preempt it again).
func (d *driver) decide(env *core.Env, st core.State) (core.Decision, *core.ConfigStats, error) {
	if d.rep.Restarts < d.opts.RestartBudget && env.Slack(st) > 0 {
		return sim.Decide(env, d.opts.Prov, st, d.opts.Sink)
	}
	if !d.rep.LastResort {
		d.rep.LastResort = true
		d.opts.logf("runtime: job %q engaging last-resort %s (restarts=%d/%d, slack=%.0fs)",
			env.Job.Name, env.LRC.Config.ID(), d.rep.Restarts, d.opts.RestartBudget, float64(env.Slack(st)))
	}
	dec, cs := lastResortDecision(env, st, d.opts.Sink)
	return dec, cs, nil
}

// lastResortDecision pins the deterministic §5 fallback configuration
// and emits the matching EvDecision — shared by the in-process driver
// and the dist driver, so both trajectories degrade identically when
// the restart budget or slack runs out. KeepCurrent derives from
// st.Current (nil once the deployment is torn down).
func lastResortDecision(env *core.Env, st core.State, sink obs.Sink) (core.Decision, *core.ConfigStats) {
	dec := core.Decision{
		Config:       env.LRC.Config,
		KeepCurrent:  st.Current != nil && st.Current.ID() == env.LRC.Config.ID(),
		ExpectedCost: env.LRCFinishCost(st.WorkLeft),
	}
	if sink != nil {
		sink.Emit(obs.Event{Type: obs.EvDecision, T: float64(st.Now), Job: env.Job.Name,
			Config:     dec.Config.ID(),
			ECUSD:      obs.Finite(float64(dec.ExpectedCost)),
			SlackSec:   obs.Finite(float64(env.Slack(st))),
			WorkLeft:   st.WorkLeft,
			Keep:       dec.KeepCurrent,
			LastResort: true,
		})
	}
	return dec, &env.LRC
}

// deploy tears down the current deployment (in-memory progress is
// lost), waits for market availability, boots the new configuration,
// reloads the newest durable checkpoint and re-clusters the
// micro-partitions for the new worker count. It returns the absolute
// next-eviction time of the fresh deployment.
func (d *driver) deploy(cs *core.ConfigStats) (units.Seconds, error) {
	d.snapLive = nil
	d.cur = nil
	d.rep.Reconfigs++
	env := d.opts.Env

	avail, err := env.Market.NextAvailable(cs.Config, d.t)
	if err != nil {
		return 0, err
	}

	// Durable reload: fetch the newest valid checkpoint (retried,
	// CRC-checked, fallback-scanned) and price the parallel
	// redistribution to the new workers with simnet. A fresh or
	// GC'd-empty namespace loads the input graph instead.
	workers := cs.Config.Count
	assign, err := d.opts.Part.VertexAssignment(workers)
	if err != nil {
		return 0, fmt.Errorf("runtime: re-cluster to %d workers: %w", workers, err)
	}
	d.assign = assign.Assign

	var ioLoad units.Seconds
	snap, fetch, lerr := d.opts.Manager.Load()
	switch {
	case lerr == nil:
		d.snapLive = snap
		ioLoad = fetch + d.reloadTime(workers)
	case errors.Is(lerr, engine.ErrNoCheckpoint):
		// Fresh start: the offline-partitioned input load, as profiled.
		ioLoad = cs.Load
	default:
		return 0, fmt.Errorf("runtime: checkpoint reload: %w", lerr)
	}
	d.rep.IOTime += ioLoad

	readyAt := avail + cs.Boot + ioLoad
	if err := d.spend(cs.Config, avail, readyAt); err != nil {
		return 0, err
	}
	doneSteps := 0
	if d.snapLive != nil {
		doneSteps = d.snapLive.Superstep
	}
	d.emit(obs.Event{Type: obs.EvDeploy, T: float64(d.t), Job: env.Job.Name,
		Config: cs.Config.ID(), WorkLeft: d.workLeft(doneSteps),
		DurSec: float64(readyAt - d.t), Reload: d.rep.Reconfigs > 1})
	d.t = readyAt
	d.cur = cs
	d.bootAt = readyAt
	return d.evictor.Next(cs.Config, readyAt), nil
}

// reloadTime prices the §6 fast reload: every worker pulls its blocks
// of the checkpoint from the datastore in parallel.
func (d *driver) reloadTime(workers int) units.Seconds {
	cluster, err := simnet.NewCluster(workers, d.opts.Net)
	if err != nil {
		d.opts.logf("runtime: reload pricing: %v", err)
		return 0
	}
	perWorker := make([]int64, workers)
	for _, w := range d.assign {
		perWorker[w]++
	}
	flows := make([]simnet.Flow, 0, workers)
	for w, vertices := range perWorker {
		flows = append(flows, simnet.Flow{Src: simnet.DatastoreNode, Dst: w,
			Bytes: vertices * d.opts.BytesPerVertex})
	}
	return cluster.SimulateFlows(flows)
}

// planSteps bounds the next engine segment in supersteps: remaining
// work, capped by the checkpoint interval (when the provisioner wants
// checkpoints) and by the provisioner's planned useful interval.
func (d *driver) planSteps(dec core.Decision, cs *core.ConfigStats, secPerStep units.Seconds, doneSteps int) (segSteps int, checkpointing bool) {
	remSteps := d.opts.TotalSupersteps - doneSteps
	if remSteps < 1 {
		remSteps = 1
	}
	segSteps = remSteps
	if dec.UseCheckpoints {
		every := d.opts.CheckpointEvery
		if every <= 0 && !math.IsInf(float64(cs.Ckpt), 1) {
			every = int(float64(cs.Ckpt) / float64(secPerStep))
			if every < 1 {
				every = 1
			}
		}
		if every >= 1 {
			checkpointing = true
			if every < segSteps {
				segSteps = every
			}
		}
	}
	if dec.MaxRun > 0 {
		if cap := int(float64(dec.MaxRun) / float64(secPerStep)); cap < segSteps {
			if cap < 1 {
				cap = 1
			}
			segSteps = cap
		}
	}
	return segSteps, checkpointing
}

// segment runs one engine segment under the live deployment and folds
// its outcome into the report. It returns done=true when the job
// finished (successfully or not recoverable).
func (d *driver) segment(ctx context.Context, dec core.Decision, cs *core.ConfigStats, nextEvict units.Seconds) (bool, error) {
	env := d.opts.Env
	doneSteps := 0
	if d.snapLive != nil {
		doneSteps = d.snapLive.Superstep
	}
	secPerStep := units.Seconds(float64(cs.Exec) / float64(d.opts.TotalSupersteps))
	segSteps, checkpointing := d.planSteps(dec, cs, secPerStep, doneSteps)

	// How many supersteps fit before the eviction lands?
	stepsToEvict := math.MaxInt
	if !math.IsInf(float64(nextEvict), 1) {
		if ratio := float64(nextEvict-d.t) / float64(secPerStep); ratio < 1e12 {
			stepsToEvict = int(ratio)
		}
	}
	if stepsToEvict <= 0 {
		// Evicted before completing a single superstep.
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return false, err
		}
		d.evict(nextEvict, cs, doneSteps)
		return false, nil
	}
	evictAfter := 0 // 0 = this segment is not interrupted
	if stepsToEvict < segSteps {
		evictAfter = stepsToEvict
	}

	res, runErr, wedged := d.runEngine(ctx, segSteps, evictAfter, cs)
	actual := res.Stats.Supersteps - doneSteps
	if actual < 0 {
		actual = 0
	}

	switch {
	case runErr == nil:
		return d.finish(res, cs, secPerStep, actual, nextEvict)

	case errors.Is(runErr, engine.ErrPaused):
		return false, d.checkpoint(res, cs, secPerStep, actual, nextEvict, checkpointing)

	case errors.Is(runErr, engine.ErrInterrupted):
		if ctx.Err() != nil {
			return false, fmt.Errorf("runtime: cancelled mid-segment: %w", ctx.Err())
		}
		if wedged {
			// Watchdog: charge the supersteps that did complete, then
			// tear down and reprovision from the last durable checkpoint.
			d.rep.WatchdogTrips++
			end := d.t + units.Seconds(float64(actual)*float64(secPerStep))
			if err := d.spend(cs.Config, d.t, end); err != nil {
				return false, err
			}
			d.opts.logf("runtime: job %q watchdog tripped on %s after superstep %d; redeploying",
				env.Job.Name, cs.Config.ID(), res.Stats.Supersteps)
			d.t = end
			d.rep.Restarts++
			d.snapLive = nil
			d.cur = nil
			return false, nil
		}
		// Injected eviction: the machines ran (and are billed) up to the
		// price crossing; in-memory progress since the last durable
		// checkpoint is lost.
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return false, err
		}
		d.evict(nextEvict, cs, doneSteps)
		return false, nil

	default:
		return false, runErr
	}
}

// evict records an injected eviction at absolute time `at` and tears
// the deployment down.
func (d *driver) evict(at units.Seconds, cs *core.ConfigStats, doneSteps int) {
	d.t = at
	d.rep.Evictions++
	d.rep.Restarts++
	d.emit(obs.Event{Type: obs.EvEvict, T: float64(at), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), WorkLeft: d.workLeft(doneSteps)})
	d.snapLive = nil
	d.cur = nil
}

// finish handles a segment that completed the job: bill the compute,
// write the output (racing the eviction), clear the checkpoint
// namespace and report.
func (d *driver) finish(res engine.Result, cs *core.ConfigStats, secPerStep units.Seconds, actual int, nextEvict units.Seconds) (bool, error) {
	segEnd := d.t + units.Seconds(float64(actual)*float64(secPerStep))
	outEnd := segEnd + cs.Save
	if nextEvict < outEnd {
		// Evicted while computing the tail or writing the output: the
		// result never became durable.
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return false, err
		}
		d.evict(nextEvict, cs, res.Stats.Supersteps-actual)
		return false, nil
	}
	if err := d.spend(cs.Config, d.t, outEnd); err != nil {
		return false, err
	}
	d.t = outEnd
	if cerr := d.opts.Manager.Clear(); cerr != nil {
		d.opts.logf("runtime: checkpoint GC for job %q incomplete: %v", d.opts.Manager.Job, cerr)
	}
	d.rep.Values = res.Values
	d.rep.Stats = res.Stats
	d.rep.Finished = true
	d.rep.Completion = d.t
	d.rep.MissedDeadline = d.t > d.deadline
	d.emit(obs.Event{Type: obs.EvDone, T: float64(d.t), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), Done: true,
		Missed: d.rep.MissedDeadline, USD: float64(d.rep.Cost)})
	return true, nil
}

// checkpoint handles a segment that paused mid-job: bill the compute,
// then try to make the snapshot durable, racing the eviction. A save
// that fails (store faults) keeps the in-memory snapshot and the old
// durable frontier; a save interrupted by the eviction loses both.
func (d *driver) checkpoint(res engine.Result, cs *core.ConfigStats, secPerStep units.Seconds, actual int, nextEvict units.Seconds, checkpointing bool) error {
	segEnd := d.t + units.Seconds(float64(actual)*float64(secPerStep))
	if !checkpointing {
		// The provisioner bounded the interval (MaxRun) without asking
		// for durability: bill the segment and go back for a decision
		// with the in-memory snapshot intact.
		if err := d.spend(cs.Config, d.t, segEnd); err != nil {
			return err
		}
		d.t = segEnd
		d.snapLive = res.Snapshot
		return nil
	}
	ioSave, serr := d.opts.Manager.Save(res.Snapshot)
	d.rep.IOTime += ioSave
	saveEnd := segEnd + ioSave
	if nextEvict < saveEnd {
		// Evicted mid-save: billed only up to the price crossing, the
		// checkpoint does not advance the durable frontier, and the
		// in-memory state is gone with the machines. (The blob may still
		// have landed; if a later reload finds it, all downstream
		// accounting derives from the actually-loaded superstep, so the
		// trajectory stays internally consistent — the race only ever
		// under-promises progress.)
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return err
		}
		d.evict(nextEvict, cs, res.Snapshot.Superstep-actual)
		return nil
	}
	if err := d.spend(cs.Config, d.t, saveEnd); err != nil {
		return err
	}
	d.t = saveEnd
	d.snapLive = res.Snapshot
	if serr != nil {
		// Partial progress is billed (the failed uploads and backoff are
		// in ioSave) but the durable frontier stays put: a later
		// eviction rolls back further. The run itself continues on the
		// intact in-memory state.
		d.opts.logf("runtime: job %q checkpoint at superstep %d failed: %v",
			d.opts.Env.Job.Name, res.Snapshot.Superstep, serr)
		return nil
	}
	d.rep.Checkpoints++
	d.emit(obs.Event{Type: obs.EvCheckpoint, T: float64(d.t), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), WorkLeft: d.workLeft(res.Snapshot.Superstep)})
	return nil
}

// monitor is the engine sink of one segment: it forwards superstep
// events, feeds the watchdog and cancels the run at the eviction
// boundary. Emit is called synchronously at the engine's superstep
// barrier, so "cancel after N supersteps" is deterministic: the engine
// observes the cancellation before starting superstep N+1.
type monitor struct {
	forward    obs.Sink
	cancel     context.CancelFunc
	evictAfter int // cancel after this many supersteps (0 = never)
	feed       chan struct{}
	steps      atomic.Int64
	evicted    atomic.Bool
}

func (m *monitor) Emit(e obs.Event) {
	if m.forward != nil {
		m.forward.Emit(e)
	}
	if e.Type != obs.EvSuperstep {
		return
	}
	n := m.steps.Add(1)
	select {
	case m.feed <- struct{}{}:
	default:
	}
	if m.evictAfter > 0 && int(n) >= m.evictAfter {
		m.evicted.Store(true)
		m.cancel()
	}
}

// runEngine executes one segment, resuming from the in-memory snapshot
// when present. It reports wedged=true when the wall-clock watchdog —
// not the eviction schedule or the caller — cancelled the run.
func (d *driver) runEngine(ctx context.Context, segSteps, evictAfter int, cs *core.ConfigStats) (engine.Result, error, bool) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	mon := &monitor{forward: d.opts.Sink, cancel: cancel,
		evictAfter: evictAfter, feed: make(chan struct{}, 1)}

	stopAfter := segSteps
	remaining := d.opts.TotalSupersteps
	if d.snapLive != nil {
		remaining -= d.snapLive.Superstep
	}
	if stopAfter >= remaining {
		stopAfter = 0 // run to completion
	}
	cfg := engine.Config{
		Workers:       cs.Config.Count,
		Assign:        d.assign,
		StopAfter:     stopAfter,
		MaxSupersteps: d.opts.MaxSupersteps,
		Canonical:     d.opts.Canonical,
		Sink:          mon,
	}

	type outcome struct {
		res engine.Result
		err error
	}
	ch := make(chan outcome, 1)
	snap := d.snapLive
	go func() {
		prog := d.opts.NewProgram()
		var res engine.Result
		var err error
		if snap == nil {
			res, err = engine.RunCtx(runCtx, d.opts.Graph, prog, cfg)
		} else {
			res, err = engine.ResumeCtx(runCtx, d.opts.Graph, prog, snap, cfg)
		}
		ch <- outcome{res, err}
	}()

	wedged := false
	if d.opts.Watchdog > 0 {
	watch:
		for {
			timer := time.NewTimer(d.opts.Watchdog)
			select {
			case out := <-ch:
				timer.Stop()
				return out.res, out.err, false
			case <-mon.feed:
				timer.Stop() // superstep completed in time; re-arm
			case <-timer.C:
				wedged = true
				cancel()
				break watch
			}
		}
		// Give the cancelled engine a grace period to unwind; a Compute
		// stuck past it is abandoned (its goroutine parks on the
		// buffered channel and is collected when it eventually returns).
		select {
		case out := <-ch:
			if out.err == nil || errors.Is(out.err, engine.ErrPaused) {
				// The run actually finished while the watchdog fired —
				// take the result, it is sound.
				return out.res, out.err, false
			}
			return out.res, out.err, true
		case <-time.After(d.opts.WatchdogGrace):
			d.opts.logf("runtime: job %q abandoned a wedged engine goroutine (watchdog %v, grace %v)",
				d.opts.Env.Job.Name, d.opts.Watchdog, d.opts.WatchdogGrace)
			return engine.Result{}, engine.ErrInterrupted, true
		}
	}
	out := <-ch
	if mon.evicted.Load() && errors.Is(out.err, engine.ErrInterrupted) {
		return out.res, out.err, false
	}
	return out.res, out.err, wedged
}
