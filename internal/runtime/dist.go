// Runtime-driven distributed clusters: ExecuteDist is Execute's
// sibling for the multi-process BSP engine (internal/dist). Where
// Execute abandons an in-process engine segment and Resumes from an
// engine checkpoint, ExecuteDist tears down a whole process set — an
// eviction or re-decision cancels the segment context, which unwinds
// the coordinator at its next barrier wait and every shard worker at
// its next frame wait or inbox drain — then re-decides the worker
// count and boots a *new* process set that resumes from the per-shard
// checkpoint blobs at the new shard count. The decision model, the
// virtual-time billing and the last-resort fallback are shared with
// Execute; only the execution substrate changes.
//
// Process sets come from a DistLauncher: LoopbackLauncher runs shards
// as goroutines in this process (unit tests, one-machine deployments),
// ProcessLauncher execs real hourglass-shard worker processes
// (integration; a killed process is indistinguishable from a spot
// eviction). Either way the driver never keeps a deployment across a
// decision point — with the workers gone, KeepCurrent has nothing to
// keep, so every decision is a fresh boot billed like one.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"os/exec"
	"strings"
	"sync"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/dist"
	"hourglass/internal/obs"
	"hourglass/internal/sim"
	"hourglass/internal/simnet"
	"hourglass/internal/units"
)

// WorkerSet is one booted set of shard workers. IDs are stable
// per-worker identities ("goroutine:0.2", "pid:4711") that the driver
// stamps into EvDeploy and EvShardEvict events, tying the virtual
// trajectory to real process lifecycles.
type WorkerSet interface {
	// IDs returns one identity per worker, indexed by shard id.
	IDs() []string
	// Stop tears the set down (idempotent; cancelling the launch
	// context has the same effect).
	Stop()
	// Wait blocks until every worker has exited.
	Wait()
}

// DistLauncher boots worker sets for the dist driver. Launch is called
// once per deployment with the coordinator address the workers must
// dial, the worker count this deployment runs at, and the 0-based
// deployment number (the chaos seam: tests key fault injection off
// attempt/shard). Workers must exit when ctx is cancelled.
type DistLauncher interface {
	Launch(ctx context.Context, addr string, shards, attempt int) (WorkerSet, error)
}

// WarningSource is an optional DistLauncher extension: a launcher that
// knows a worker of deployment `attempt` is scheduled to die (a chaos
// -die-at injection, a cloud rebalance notice) reports the absolute
// superstep the death lands in, so the driver can arm a warm standby
// for real worker losses exactly like forecast market evictions.
// Return 0 for "no scheduled death".
type WarningSource interface {
	DeathWarning(attempt int) int
}

// StandbyLauncher is an optional DistLauncher extension: the driver
// boots warm-standby worker sets through it so the workers prefetch the
// job's newest checkpoint chain (dist.ShardOptions.PrefetchJob) while
// the primary session is still running. Launchers without it still get
// warm boots, just cold first reads.
type StandbyLauncher interface {
	LaunchStandby(ctx context.Context, addr string, shards, attempt int, prefetchJob string) (WorkerSet, error)
}

// LoopbackLauncher runs shard workers as goroutines in this process,
// connected to the coordinator over loopback TCP — real wire frames
// and real checkpoint blobs, no process overhead.
type LoopbackLauncher struct {
	// Store holds the shards' checkpoint blobs (required; must be the
	// store the coordinator seals manifests in).
	Store cloud.BlobStore
	// ShardOpts, when non-nil, supplies per-shard options per
	// deployment — the chaos hooks. A zero Store inherits the
	// launcher's.
	ShardOpts func(attempt, shard int) dist.ShardOptions
	// Logf receives per-shard session diagnostics (nil = discard).
	Logf func(format string, args ...any)
	// DeathAt, when non-nil, forewarns the driver of scheduled worker
	// deaths: it reports the absolute superstep a worker of the given
	// deployment will die at (0 = none). Tests wire it to the same
	// schedule their ShardOpts chaos hook injects.
	DeathAt func(attempt int) int
}

// Launch implements DistLauncher.
func (l *LoopbackLauncher) Launch(ctx context.Context, addr string, shards, attempt int) (WorkerSet, error) {
	return l.launch(ctx, addr, shards, attempt, "")
}

// LaunchStandby implements StandbyLauncher.
func (l *LoopbackLauncher) LaunchStandby(ctx context.Context, addr string, shards, attempt int, prefetchJob string) (WorkerSet, error) {
	return l.launch(ctx, addr, shards, attempt, prefetchJob)
}

// DeathWarning implements WarningSource.
func (l *LoopbackLauncher) DeathWarning(attempt int) int {
	if l.DeathAt == nil {
		return 0
	}
	return l.DeathAt(attempt)
}

func (l *LoopbackLauncher) launch(ctx context.Context, addr string, shards, attempt int, prefetchJob string) (WorkerSet, error) {
	wctx, cancel := context.WithCancel(ctx)
	ws := &loopbackSet{cancel: cancel, ids: make([]string, shards)}
	for i := 0; i < shards; i++ {
		opts := dist.ShardOptions{Store: l.Store}
		if l.ShardOpts != nil {
			opts = l.ShardOpts(attempt, i)
			if opts.Store == nil {
				opts.Store = l.Store
			}
		}
		if opts.PrefetchJob == "" {
			opts.PrefetchJob = prefetchJob
		}
		ws.ids[i] = fmt.Sprintf("goroutine:%d.%d", attempt, i)
		// The worker announces its identity in the hello: the
		// coordinator assigns shard ids by accept order, so loss events
		// can only be attributed by the worker naming itself.
		if opts.Proc == "" {
			opts.Proc = ws.ids[i]
		}
		ws.wg.Add(1)
		go func() {
			defer ws.wg.Done()
			// Session errors surface coordinator-side (as shard loss);
			// the shard's own view is diagnostics only.
			if err := dist.Dial(wctx, addr, opts); err != nil && l.Logf != nil {
				l.Logf("runtime: loopback shard: %v", err)
			}
		}()
	}
	return ws, nil
}

type loopbackSet struct {
	ids    []string
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func (s *loopbackSet) IDs() []string { return s.ids }
func (s *loopbackSet) Stop()         { s.cancel() }
func (s *loopbackSet) Wait()         { s.wg.Wait() }

// ProcessLauncher boots real hourglass-shard OS processes in -once
// mode, sharing checkpoints through a cloud.FSStore directory. Workers
// die with the launch context (SIGKILL via exec.CommandContext), so a
// cancelled or evicted segment leaves no process behind.
type ProcessLauncher struct {
	// Bin is the hourglass-shard binary path (required).
	Bin string
	// StoreDir is the checkpoint directory passed as -store; it must
	// back the same files as the driver's Store (required).
	StoreDir string
	// ExtraArgs, when non-nil, appends per-worker flags — the chaos
	// seam for -die-at style fault injection.
	ExtraArgs func(attempt, shard int) []string
	// DeathAt, when non-nil, forewarns the driver of scheduled worker
	// deaths (see WarningSource); wire it to the schedule ExtraArgs
	// passes via -die-at.
	DeathAt func(attempt int) int
}

// Launch implements DistLauncher.
func (l *ProcessLauncher) Launch(ctx context.Context, addr string, shards, attempt int) (WorkerSet, error) {
	return l.launch(ctx, addr, shards, attempt, "")
}

// LaunchStandby implements StandbyLauncher: standby workers get
// -prefetch-job so they warm their blob cache before the handshake.
func (l *ProcessLauncher) LaunchStandby(ctx context.Context, addr string, shards, attempt int, prefetchJob string) (WorkerSet, error) {
	return l.launch(ctx, addr, shards, attempt, prefetchJob)
}

// DeathWarning implements WarningSource.
func (l *ProcessLauncher) DeathWarning(attempt int) int {
	if l.DeathAt == nil {
		return 0
	}
	return l.DeathAt(attempt)
}

func (l *ProcessLauncher) launch(ctx context.Context, addr string, shards, attempt int, prefetchJob string) (WorkerSet, error) {
	ws := &processSet{}
	for i := 0; i < shards; i++ {
		args := []string{"-coordinator", addr, "-store", l.StoreDir, "-once"}
		if prefetchJob != "" {
			args = append(args, "-prefetch-job", prefetchJob)
		}
		if l.ExtraArgs != nil {
			args = append(args, l.ExtraArgs(attempt, i)...)
		}
		cmd := exec.CommandContext(ctx, l.Bin, args...)
		if err := cmd.Start(); err != nil {
			ws.Stop()
			ws.Wait()
			return nil, fmt.Errorf("runtime: starting shard process %d of %d: %w", i, shards, err)
		}
		ws.cmds = append(ws.cmds, cmd)
		ws.ids = append(ws.ids, fmt.Sprintf("pid:%d", cmd.Process.Pid))
	}
	return ws, nil
}

type processSet struct {
	ids  []string
	cmds []*exec.Cmd
}

func (s *processSet) IDs() []string { return s.ids }

func (s *processSet) Stop() {
	for _, c := range s.cmds {
		if c.Process != nil {
			_ = c.Process.Kill()
		}
	}
}

func (s *processSet) Wait() {
	for _, c := range s.cmds {
		// A torn-down or chaos-killed -once worker exits nonzero by
		// design; all the driver needs is that it is gone.
		_ = c.Wait()
	}
}

// DistOptions configures one runtime-driven distributed execution.
type DistOptions struct {
	// Env supplies the configuration set, market, eviction traces and
	// per-config stats (required). A decision's Config.Count is the
	// worker count its process set boots with.
	Env *core.Env
	// Prov decides the configuration after every eviction and loss
	// (required).
	Prov core.Provisioner
	// Program and Graph are the specs every process instantiates
	// (required: Program.Name non-empty).
	Program dist.ProgramSpec
	Graph   dist.GraphSpec
	// Store holds per-shard checkpoint blobs and manifests (required).
	// It must be reachable by every worker the Launcher boots, and the
	// Job namespace must be clean at the first deployment — a stale
	// checkpoint there would be resumed from.
	Store cloud.BlobStore
	// Job namespaces the checkpoint keys in Store (required).
	Job string
	// Launcher boots the worker sets (required).
	Launcher DistLauncher
	// TotalSupersteps is the expected superstep count of an
	// uninterrupted run — the denominator of the work-left model
	// (required > 0).
	TotalSupersteps int

	// CheckpointEvery is the dist checkpoint interval in supersteps
	// (0 = 2). The dist plane always checkpoints: the process set is
	// the only holder of in-memory state, so a provisioner decision
	// without durability would make every loss a restart from scratch.
	CheckpointEvery int
	// WarningWindow is the eviction advance notice: the driver learns
	// of an upcoming eviction (or scheduled worker death, see
	// WarningSource) WarningWindow virtual seconds early, arms a warm
	// standby cluster that boots and prefetches concurrently with the
	// doomed session, and — when the window fits a checkpoint save —
	// forces one final checkpoint at the eviction boundary so the
	// standby resumes within one superstep of it. 0 disables warm
	// standby (pure reactive recovery).
	WarningWindow units.Seconds
	// DeltaChain bounds the dist checkpoint delta chain: up to
	// DeltaChain consecutive delta checkpoints follow each full one
	// (0 = every checkpoint full).
	DeltaChain int
	// RestartBudget bounds evictions + losses before the driver pins
	// the last-resort configuration (0 = 8).
	RestartBudget int
	// MaxDecisions guards against livelock (0 = 10_000).
	MaxDecisions int
	// BarrierTimeout is the coordinator's watchdog window; ctx
	// cancellation also resolves within it (0 = the dist default).
	BarrierTimeout time.Duration
	// MaxSupersteps aborts runaway sessions (0 = dist default).
	MaxSupersteps int
	// BytesPerVertex sizes the parallel checkpoint reload flows priced
	// by simnet (0 = 64).
	BytesPerVertex int64
	// Net shapes the reload network (zero value = simnet.DefaultConfig).
	Net simnet.Config
	// Sink receives the structured event stream; EvDeploy and
	// EvShardEvict carry worker process identity in Proc. Nil disables
	// tracing.
	Sink obs.Sink
	// Logf receives non-fatal diagnostics (nil = standard logger).
	Logf func(format string, args ...any)
}

func (o *DistOptions) validate() error {
	switch {
	case o.Env == nil:
		return errors.New("runtime: nil Env")
	case o.Prov == nil:
		return errors.New("runtime: nil Prov")
	case o.Program.Name == "":
		return errors.New("runtime: empty Program.Name")
	case o.Store == nil:
		return errors.New("runtime: nil Store")
	case o.Job == "":
		return errors.New("runtime: empty Job")
	case o.Launcher == nil:
		return errors.New("runtime: nil Launcher")
	case o.TotalSupersteps <= 0:
		return fmt.Errorf("runtime: TotalSupersteps = %d", o.TotalSupersteps)
	}
	return nil
}

func (o *DistOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ExecuteDist drives the distributed program to completion under
// injected evictions and real worker losses, starting at virtual time
// start with an absolute deadline. Cancelling ctx stops the live
// cluster — coordinator and every worker — within BarrierTimeout. The
// returned Report is meaningful even alongside an error: it carries
// the spend, I/O and deployment history accumulated before the
// failure.
func ExecuteDist(ctx context.Context, opts DistOptions, start, deadline units.Seconds) (Report, error) {
	if err := opts.validate(); err != nil {
		return Report{}, err
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 2
	}
	if opts.RestartBudget <= 0 {
		opts.RestartBudget = 8
	}
	if opts.MaxDecisions <= 0 {
		opts.MaxDecisions = 10_000
	}
	if opts.BytesPerVertex <= 0 {
		opts.BytesPerVertex = 64
	}
	if opts.Net == (simnet.Config{}) {
		opts.Net = simnet.DefaultConfig()
	}
	d := &distDriver{
		opts:     &opts,
		evictor:  sim.Evictor{Market: opts.Env.Market},
		deadline: deadline,
		t:        start,
	}
	return d.run(ctx)
}

// distDriver carries the mutable state of one ExecuteDist call.
type distDriver struct {
	opts     *DistOptions
	evictor  sim.Evictor
	deadline units.Seconds
	rep      Report

	t       units.Seconds // virtual clock
	durable int           // newest durable checkpoint superstep (0 = none)

	// pending is a warm standby adopted at the last eviction: the next
	// run-loop iteration runs its session over the pre-booted listener
	// and worker set instead of deciding and deploying afresh.
	pending *standbyState
}

func (d *distDriver) emit(e obs.Event) {
	if d.opts.Sink != nil {
		d.opts.Sink.Emit(e)
	}
}

// spend bills a machine-time interval on the market, mirroring the
// in-process driver so obs.Summarize folds the trace to rep.Cost
// bit-exactly.
func (d *distDriver) spend(c cloud.Config, from, to units.Seconds) error {
	cost, err := d.opts.Env.Market.Cost(c, from, to)
	if err != nil {
		return err
	}
	d.rep.Cost += cost
	if d.opts.Sink != nil {
		d.opts.Sink.Emit(obs.Event{Type: obs.EvSpend, T: float64(from),
			Config: c.ID(), USD: float64(cost)})
	}
	return nil
}

func (d *distDriver) run(ctx context.Context) (Report, error) {
	env := d.opts.Env
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			d.teardownStandby(d.pending)
			return d.rep, fmt.Errorf("runtime: dist run cancelled after %d decisions: %w", d.rep.Decisions, err)
		}
		if sb := d.pending; sb != nil {
			// Warm cutover: the decision was made at the warning (and
			// counted there), the set is booted and prefetched — go
			// straight to the session.
			d.pending = nil
			if d.rep.Decisions > d.opts.MaxDecisions {
				d.teardownStandby(sb)
				return d.rep, fmt.Errorf("runtime: exceeded %d decisions (provisioner livelock?)", d.opts.MaxDecisions)
			}
			done, err := d.segment(ctx, sb.cs, attempt, sb)
			if err != nil || done {
				return d.rep, err
			}
			continue
		}
		d.rep.Decisions++
		if d.rep.Decisions > d.opts.MaxDecisions {
			return d.rep, fmt.Errorf("runtime: exceeded %d decisions (provisioner livelock?)", d.opts.MaxDecisions)
		}
		// No live deployment survives a dist decision point (the process
		// set is gone), so Current is always nil and every decision boots
		// fresh.
		st := core.State{Now: d.t, WorkLeft: workLeft(d.opts.TotalSupersteps, d.durable),
			Deadline: d.deadline}
		dec, cs, err := d.decide(env, st)
		if err != nil {
			return d.rep, err
		}
		_ = dec // durability is not optional on the dist plane; see CheckpointEvery
		done, err := d.segment(ctx, cs, attempt, nil)
		if err != nil || done {
			return d.rep, err
		}
	}
}

// decide consults the provisioner, or pins the last-resort
// configuration once the restart budget or slack is exhausted — the
// same §5 fallback the in-process driver takes.
func (d *distDriver) decide(env *core.Env, st core.State) (core.Decision, *core.ConfigStats, error) {
	if d.rep.Restarts < d.opts.RestartBudget && env.Slack(st) > 0 {
		return sim.Decide(env, d.opts.Prov, st, d.opts.Sink)
	}
	if !d.rep.LastResort {
		d.rep.LastResort = true
		d.opts.logf("runtime: dist job %q engaging last-resort %s (restarts=%d/%d, slack=%.0fs)",
			env.Job.Name, env.LRC.Config.ID(), d.rep.Restarts, d.opts.RestartBudget, float64(env.Slack(st)))
	}
	dec, cs := lastResortDecision(env, st, d.opts.Sink)
	return dec, cs, nil
}

// reloadTime prices the parallel checkpoint reload of a fresh process
// set: every worker pulls its share of the vertices from the
// datastore. The dist plane assigns vertices round-robin, so the
// per-worker flows are even to within one vertex.
func (d *distDriver) reloadTime(workers int) units.Seconds {
	cluster, err := simnet.NewCluster(workers, d.opts.Net)
	if err != nil {
		d.opts.logf("runtime: dist reload pricing: %v", err)
		return 0
	}
	vertices := int64(1) << d.opts.Graph.Scale
	flows := make([]simnet.Flow, 0, workers)
	for w := 0; w < workers; w++ {
		n := vertices / int64(workers)
		if int64(w) < vertices%int64(workers) {
			n++
		}
		flows = append(flows, simnet.Flow{Src: simnet.DatastoreNode, Dst: w,
			Bytes: n * d.opts.BytesPerVertex})
	}
	return cluster.SimulateFlows(flows)
}

// segment runs one dist session under cs, folding the outcome into the
// report. With warm == nil it boots a fresh process set (billing wait +
// boot + load); with a warm standby it adopts the pre-booted listener
// and worker set at zero additional downtime. It returns done=true when
// the job finished (successfully or not recoverably).
func (d *distDriver) segment(ctx context.Context, cs *core.ConfigStats, attempt int, warm *standbyState) (bool, error) {
	env := d.opts.Env
	shards := cs.Config.Count
	t0 := d.t
	var deployDur units.Seconds

	if warm == nil {
		// Deploy billing mirrors the in-process driver: wait for market
		// availability, boot, then either the profiled input load (fresh
		// start) or the simnet-priced parallel checkpoint redistribution
		// to the new worker count.
		avail, err := env.Market.NextAvailable(cs.Config, d.t)
		if err != nil {
			return false, err
		}
		var ioLoad units.Seconds
		if d.durable > 0 {
			ioLoad = d.reloadTime(shards)
		} else {
			ioLoad = cs.Load
		}
		d.rep.IOTime += ioLoad
		readyAt := avail + cs.Boot + ioLoad
		if err := d.spend(cs.Config, avail, readyAt); err != nil {
			return false, err
		}
		d.t = readyAt
		deployDur = readyAt - t0
		if d.durable > 0 {
			d.rep.RecoveryTime += deployDur
		}
	}
	// A warm cutover's boot and reload were paid inside the warning
	// window, overlapped with the doomed session: the standby was billed
	// through the eviction instant at adoption and d.t is already that
	// instant, so the deploy span — the recovery downtime — is zero.
	d.rep.Reconfigs++
	d.rep.ShardCounts = append(d.rep.ShardCounts, shards)

	nextEvict := d.evictor.Next(cs.Config, d.t)
	secPerStep := units.Seconds(float64(cs.Exec) / float64(d.opts.TotalSupersteps))
	remSteps := d.opts.TotalSupersteps - d.durable
	if remSteps < 1 {
		remSteps = 1
	}
	stepsToEvict := math.MaxInt
	if !math.IsInf(float64(nextEvict), 1) {
		if ratio := float64(nextEvict-d.t) / float64(secPerStep); ratio < 1e12 {
			stepsToEvict = int(ratio)
		}
	}
	if stepsToEvict <= 0 {
		// Evicted before one superstep would complete: not worth running
		// the cluster at all.
		d.teardownStandby(warm)
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return false, err
		}
		d.evictAt(nextEvict, cs)
		return false, nil
	}
	evictAfter := 0 // 0 = this segment is not interrupted
	if stepsToEvict < remSteps {
		evictAfter = stepsToEvict
	}

	mon := &distMonitor{forward: d.opts.Sink, evictAfter: evictAfter}
	forceCkptAt, sbArm := d.armStandby(ctx, mon, cs, attempt, evictAfter, remSteps, secPerStep, nextEvict)

	rep, runErr := d.session(ctx, cs, shards, attempt, mon, forceCkptAt, deployDur, warm)
	actual := mon.stepsDone()
	segEnd := d.t + units.Seconds(float64(actual)*float64(secPerStep))

	// If the warning fired, a standby orchestration goroutine ran (or is
	// still running) concurrently with the session; join it before
	// touching the report.
	var sb *standbyState
	if sbArm != nil && mon.warnFired() {
		<-sbArm.done
		sb = sbArm
	}

	switch {
	case runErr == nil:
		done, err := d.finish(rep, cs, segEnd, nextEvict, mon)
		if err != nil {
			d.teardownStandby(sb)
			return false, err
		}
		if done {
			// The job finished under the doomed session after all; the
			// standby was insurance that never paid out.
			return true, d.discardStandby(sb, d.t)
		}
		// Evicted computing the tail or writing the output (finish
		// recorded the eviction at nextEvict): a ready standby still
		// takes over.
		return false, d.settleStandby(sb, nextEvict)

	case mon.tripped() && ctx.Err() == nil:
		// Injected eviction: the machines ran (and are billed) up to the
		// price crossing; progress past the durable frontier is gone
		// with the processes.
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			d.teardownStandby(sb)
			return false, err
		}
		d.commitDurable(mon)
		d.evictAt(nextEvict, cs)
		return false, d.settleStandby(sb, nextEvict)

	case ctx.Err() != nil:
		d.teardownStandby(sb)
		d.commitDurable(mon)
		return false, fmt.Errorf("runtime: dist run cancelled mid-session: %w", ctx.Err())

	default:
		var lost *dist.ShardLostError
		if errors.As(runErr, &lost) {
			// A worker actually died (chaos hook, killed process): bill
			// the supersteps that did complete, then go back around —
			// the next decision is free to pick a different worker count
			// and the next session resumes the blobs at that count. A
			// forewarned death (WarningSource) may have a standby ready.
			if err := d.spend(cs.Config, d.t, segEnd); err != nil {
				d.teardownStandby(sb)
				return false, err
			}
			d.commitDurable(mon)
			d.evictAt(segEnd, cs)
			return false, d.settleStandby(sb, segEnd)
		}
		d.teardownStandby(sb)
		return false, runErr
	}
}

// session runs one coordinator session over a worker set — freshly
// launched, or adopted from a warm standby. Whatever the outcome, the
// set is torn down and waited for before returning: the next deployment
// must never race a straggler from this one.
func (d *distDriver) session(ctx context.Context, cs *core.ConfigStats, shards, attempt int, mon *distMonitor, forceCkptAt int, deployDur units.Seconds, warm *standbyState) (*dist.Report, error) {
	segCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	mon.cancel = cancel
	var ln net.Listener
	var ws WorkerSet
	if warm != nil {
		ln, ws = warm.ln, warm.ws
		defer warm.cancel()
		defer ln.Close()
	} else {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("runtime: dist coordinator listener: %w", err)
		}
		defer ln.Close()
		ws, err = d.opts.Launcher.Launch(segCtx, ln.Addr().String(), shards, attempt)
		if err != nil {
			return nil, fmt.Errorf("runtime: launching %d workers: %w", shards, err)
		}
	}
	d.emit(obs.Event{Type: obs.EvDeploy, T: float64(d.t), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), WorkLeft: workLeft(d.opts.TotalSupersteps, d.durable),
		DurSec: float64(deployDur), Proc: strings.Join(ws.IDs(), ","), Reload: d.durable > 0})
	cfg := dist.Config{
		Job:               d.opts.Job,
		Program:           d.opts.Program,
		Graph:             d.opts.Graph,
		Canonical:         true,
		CheckpointEvery:   d.opts.CheckpointEvery,
		DeltaChain:        d.opts.DeltaChain,
		ForceCheckpointAt: forceCkptAt,
		MaxSupersteps:     d.opts.MaxSupersteps,
		BarrierTimeout:    d.opts.BarrierTimeout,
		Store:             d.opts.Store,
		Sink:              mon,
		Logf:              d.opts.Logf,
	}
	rep, runErr := dist.AcceptAndRun(segCtx, ln, shards, cfg)
	cancel()
	ws.Stop()
	ws.Wait()
	return rep, runErr
}

// evictAt records a deployment-level eviction at absolute time `at`.
func (d *distDriver) evictAt(at units.Seconds, cs *core.ConfigStats) {
	d.t = at
	d.rep.Evictions++
	d.rep.Restarts++
	d.emit(obs.Event{Type: obs.EvEvict, T: float64(at), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), WorkLeft: workLeft(d.opts.TotalSupersteps, d.durable)})
}

// commitDurable folds a session's checkpoint progress into the driver:
// the durable frontier only ever advances (a later session resuming an
// older manifest would have found the newer one first).
func (d *distDriver) commitDurable(mon *distMonitor) {
	durable, ckpts := mon.progress()
	d.rep.Checkpoints += ckpts
	if durable > d.durable {
		d.durable = durable
	}
}

// finish handles a session that completed the job: bill the compute
// and the output write (racing the eviction), clear the checkpoint
// namespace and report.
func (d *distDriver) finish(rep *dist.Report, cs *core.ConfigStats, segEnd, nextEvict units.Seconds, mon *distMonitor) (bool, error) {
	outEnd := segEnd + cs.Save
	if nextEvict < outEnd {
		// Evicted computing the tail or writing the output: the result
		// never became durable. The session's checkpoints did, so the
		// next attempt resumes rather than restarting.
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return false, err
		}
		d.commitDurable(mon)
		d.evictAt(nextEvict, cs)
		return false, nil
	}
	if err := d.spend(cs.Config, d.t, outEnd); err != nil {
		return false, err
	}
	d.t = outEnd
	d.commitDurable(mon)
	if cerr := dist.ClearJob(d.opts.Store, d.opts.Job); cerr != nil {
		d.opts.logf("runtime: dist checkpoint GC for job %q incomplete: %v", d.opts.Job, cerr)
	}
	d.rep.Values = rep.Values
	d.rep.Stats = rep.Stats
	d.rep.Finished = true
	d.rep.Completion = d.t
	d.rep.MissedDeadline = d.t > d.deadline
	d.emit(obs.Event{Type: obs.EvDone, T: float64(d.t), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), Done: true,
		Missed: d.rep.MissedDeadline, USD: float64(d.rep.Cost)})
	return true, nil
}

// distMonitor is the coordinator sink of one session: it forwards
// events (stamping worker identity onto EvShardEvict), tracks the
// session's superstep and checkpoint progress, fires the eviction
// warning, and cancels the segment context at the injected eviction
// boundary. The coordinator emits EvSuperstep synchronously at the
// barrier — before sealing that boundary's checkpoint — so "evict
// after N supersteps" is deterministic: the session stops before
// superstep N+1 and the checkpoint at N never becomes durable, exactly
// a machine-set loss at that instant.
//
// In warm mode (warmBoundary > 0, set when the warning window fits one
// final save) the cancellation moves to the EvCheckpoint the
// coordinator emits after sealing the forced boundary checkpoint: the
// session still stops before superstep N+1 starts, but the boundary's
// state is durable — the in-window save. If that save never seals, the
// EvSuperstep for N+1 is the safety net.
type distMonitor struct {
	forward      obs.Sink
	cancel       context.CancelFunc
	evictAfter   int    // cancel after this many supersteps (0 = never)
	warmBoundary int    // absolute superstep of the forced in-window save (0 = reactive)
	warnAfter    int    // fire onWarn after this many supersteps (0 = never)
	onWarn       func() // must not block: spawn, don't orchestrate

	mu          sync.Mutex
	steps       int // supersteps completed this session
	durable     int // newest sealed checkpoint superstep this session
	checkpoints int
	evicted     bool
	warned      bool
}

func (m *distMonitor) Emit(e obs.Event) {
	switch e.Type {
	case obs.EvSuperstep:
		m.mu.Lock()
		m.steps++
		limit := m.evictAfter
		if m.warmBoundary > 0 {
			limit = m.evictAfter + 1
		}
		trip := m.evictAfter > 0 && m.steps >= limit && !m.evicted
		if trip {
			m.evicted = true
		}
		warn := m.warnAfter > 0 && m.steps >= m.warnAfter && !m.warned
		if warn {
			m.warned = true
		}
		m.mu.Unlock()
		if warn && m.onWarn != nil {
			m.onWarn()
		}
		if trip {
			m.cancel()
		}
	case obs.EvCheckpoint:
		m.mu.Lock()
		if e.Superstep > m.durable {
			m.durable = e.Superstep
		}
		m.checkpoints++
		trip := m.warmBoundary > 0 && e.Superstep >= m.warmBoundary && !m.evicted
		if trip {
			m.evicted = true
		}
		m.mu.Unlock()
		if trip {
			m.cancel()
		}
	}
	if m.forward != nil {
		m.forward.Emit(e)
	}
}

// warnFired reports whether the eviction warning fired this session.
func (m *distMonitor) warnFired() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.warned
}

// stepsDone reports the supersteps completed this session.
func (m *distMonitor) stepsDone() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steps
}

// tripped reports whether this monitor cancelled the session at the
// injected eviction boundary.
func (m *distMonitor) tripped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// progress returns the session's durable frontier and checkpoint count.
func (m *distMonitor) progress() (durable, checkpoints int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durable, m.checkpoints
}
