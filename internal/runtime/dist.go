// Runtime-driven distributed clusters: ExecuteDist is Execute's
// sibling for the multi-process BSP engine (internal/dist). Where
// Execute abandons an in-process engine segment and Resumes from an
// engine checkpoint, ExecuteDist tears down a whole process set — an
// eviction or re-decision cancels the segment context, which unwinds
// the coordinator at its next barrier wait and every shard worker at
// its next frame wait or inbox drain — then re-decides the worker
// count and boots a *new* process set that resumes from the per-shard
// checkpoint blobs at the new shard count. The decision model, the
// virtual-time billing and the last-resort fallback are shared with
// Execute; only the execution substrate changes.
//
// Process sets come from a DistLauncher: LoopbackLauncher runs shards
// as goroutines in this process (unit tests, one-machine deployments),
// ProcessLauncher execs real hourglass-shard worker processes
// (integration; a killed process is indistinguishable from a spot
// eviction). Either way the driver never keeps a deployment across a
// decision point — with the workers gone, KeepCurrent has nothing to
// keep, so every decision is a fresh boot billed like one.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"os/exec"
	"strings"
	"sync"
	"time"

	"hourglass/internal/cloud"
	"hourglass/internal/core"
	"hourglass/internal/dist"
	"hourglass/internal/obs"
	"hourglass/internal/sim"
	"hourglass/internal/simnet"
	"hourglass/internal/units"
)

// WorkerSet is one booted set of shard workers. IDs are stable
// per-worker identities ("goroutine:0.2", "pid:4711") that the driver
// stamps into EvDeploy and EvShardEvict events, tying the virtual
// trajectory to real process lifecycles.
type WorkerSet interface {
	// IDs returns one identity per worker, indexed by shard id.
	IDs() []string
	// Stop tears the set down (idempotent; cancelling the launch
	// context has the same effect).
	Stop()
	// Wait blocks until every worker has exited.
	Wait()
}

// DistLauncher boots worker sets for the dist driver. Launch is called
// once per deployment with the coordinator address the workers must
// dial, the worker count this deployment runs at, and the 0-based
// deployment number (the chaos seam: tests key fault injection off
// attempt/shard). Workers must exit when ctx is cancelled.
type DistLauncher interface {
	Launch(ctx context.Context, addr string, shards, attempt int) (WorkerSet, error)
}

// LoopbackLauncher runs shard workers as goroutines in this process,
// connected to the coordinator over loopback TCP — real wire frames
// and real checkpoint blobs, no process overhead.
type LoopbackLauncher struct {
	// Store holds the shards' checkpoint blobs (required; must be the
	// store the coordinator seals manifests in).
	Store cloud.BlobStore
	// ShardOpts, when non-nil, supplies per-shard options per
	// deployment — the chaos hooks. A zero Store inherits the
	// launcher's.
	ShardOpts func(attempt, shard int) dist.ShardOptions
	// Logf receives per-shard session diagnostics (nil = discard).
	Logf func(format string, args ...any)
}

// Launch implements DistLauncher.
func (l *LoopbackLauncher) Launch(ctx context.Context, addr string, shards, attempt int) (WorkerSet, error) {
	wctx, cancel := context.WithCancel(ctx)
	ws := &loopbackSet{cancel: cancel, ids: make([]string, shards)}
	for i := 0; i < shards; i++ {
		opts := dist.ShardOptions{Store: l.Store}
		if l.ShardOpts != nil {
			opts = l.ShardOpts(attempt, i)
			if opts.Store == nil {
				opts.Store = l.Store
			}
		}
		ws.ids[i] = fmt.Sprintf("goroutine:%d.%d", attempt, i)
		// The worker announces its identity in the hello: the
		// coordinator assigns shard ids by accept order, so loss events
		// can only be attributed by the worker naming itself.
		if opts.Proc == "" {
			opts.Proc = ws.ids[i]
		}
		ws.wg.Add(1)
		go func() {
			defer ws.wg.Done()
			// Session errors surface coordinator-side (as shard loss);
			// the shard's own view is diagnostics only.
			if err := dist.Dial(wctx, addr, opts); err != nil && l.Logf != nil {
				l.Logf("runtime: loopback shard: %v", err)
			}
		}()
	}
	return ws, nil
}

type loopbackSet struct {
	ids    []string
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func (s *loopbackSet) IDs() []string { return s.ids }
func (s *loopbackSet) Stop()         { s.cancel() }
func (s *loopbackSet) Wait()         { s.wg.Wait() }

// ProcessLauncher boots real hourglass-shard OS processes in -once
// mode, sharing checkpoints through a cloud.FSStore directory. Workers
// die with the launch context (SIGKILL via exec.CommandContext), so a
// cancelled or evicted segment leaves no process behind.
type ProcessLauncher struct {
	// Bin is the hourglass-shard binary path (required).
	Bin string
	// StoreDir is the checkpoint directory passed as -store; it must
	// back the same files as the driver's Store (required).
	StoreDir string
	// ExtraArgs, when non-nil, appends per-worker flags — the chaos
	// seam for -die-at style fault injection.
	ExtraArgs func(attempt, shard int) []string
}

// Launch implements DistLauncher.
func (l *ProcessLauncher) Launch(ctx context.Context, addr string, shards, attempt int) (WorkerSet, error) {
	ws := &processSet{}
	for i := 0; i < shards; i++ {
		args := []string{"-coordinator", addr, "-store", l.StoreDir, "-once"}
		if l.ExtraArgs != nil {
			args = append(args, l.ExtraArgs(attempt, i)...)
		}
		cmd := exec.CommandContext(ctx, l.Bin, args...)
		if err := cmd.Start(); err != nil {
			ws.Stop()
			ws.Wait()
			return nil, fmt.Errorf("runtime: starting shard process %d of %d: %w", i, shards, err)
		}
		ws.cmds = append(ws.cmds, cmd)
		ws.ids = append(ws.ids, fmt.Sprintf("pid:%d", cmd.Process.Pid))
	}
	return ws, nil
}

type processSet struct {
	ids  []string
	cmds []*exec.Cmd
}

func (s *processSet) IDs() []string { return s.ids }

func (s *processSet) Stop() {
	for _, c := range s.cmds {
		if c.Process != nil {
			_ = c.Process.Kill()
		}
	}
}

func (s *processSet) Wait() {
	for _, c := range s.cmds {
		// A torn-down or chaos-killed -once worker exits nonzero by
		// design; all the driver needs is that it is gone.
		_ = c.Wait()
	}
}

// DistOptions configures one runtime-driven distributed execution.
type DistOptions struct {
	// Env supplies the configuration set, market, eviction traces and
	// per-config stats (required). A decision's Config.Count is the
	// worker count its process set boots with.
	Env *core.Env
	// Prov decides the configuration after every eviction and loss
	// (required).
	Prov core.Provisioner
	// Program and Graph are the specs every process instantiates
	// (required: Program.Name non-empty).
	Program dist.ProgramSpec
	Graph   dist.GraphSpec
	// Store holds per-shard checkpoint blobs and manifests (required).
	// It must be reachable by every worker the Launcher boots, and the
	// Job namespace must be clean at the first deployment — a stale
	// checkpoint there would be resumed from.
	Store cloud.BlobStore
	// Job namespaces the checkpoint keys in Store (required).
	Job string
	// Launcher boots the worker sets (required).
	Launcher DistLauncher
	// TotalSupersteps is the expected superstep count of an
	// uninterrupted run — the denominator of the work-left model
	// (required > 0).
	TotalSupersteps int

	// CheckpointEvery is the dist checkpoint interval in supersteps
	// (0 = 2). The dist plane always checkpoints: the process set is
	// the only holder of in-memory state, so a provisioner decision
	// without durability would make every loss a restart from scratch.
	CheckpointEvery int
	// RestartBudget bounds evictions + losses before the driver pins
	// the last-resort configuration (0 = 8).
	RestartBudget int
	// MaxDecisions guards against livelock (0 = 10_000).
	MaxDecisions int
	// BarrierTimeout is the coordinator's watchdog window; ctx
	// cancellation also resolves within it (0 = the dist default).
	BarrierTimeout time.Duration
	// MaxSupersteps aborts runaway sessions (0 = dist default).
	MaxSupersteps int
	// BytesPerVertex sizes the parallel checkpoint reload flows priced
	// by simnet (0 = 64).
	BytesPerVertex int64
	// Net shapes the reload network (zero value = simnet.DefaultConfig).
	Net simnet.Config
	// Sink receives the structured event stream; EvDeploy and
	// EvShardEvict carry worker process identity in Proc. Nil disables
	// tracing.
	Sink obs.Sink
	// Logf receives non-fatal diagnostics (nil = standard logger).
	Logf func(format string, args ...any)
}

func (o *DistOptions) validate() error {
	switch {
	case o.Env == nil:
		return errors.New("runtime: nil Env")
	case o.Prov == nil:
		return errors.New("runtime: nil Prov")
	case o.Program.Name == "":
		return errors.New("runtime: empty Program.Name")
	case o.Store == nil:
		return errors.New("runtime: nil Store")
	case o.Job == "":
		return errors.New("runtime: empty Job")
	case o.Launcher == nil:
		return errors.New("runtime: nil Launcher")
	case o.TotalSupersteps <= 0:
		return fmt.Errorf("runtime: TotalSupersteps = %d", o.TotalSupersteps)
	}
	return nil
}

func (o *DistOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ExecuteDist drives the distributed program to completion under
// injected evictions and real worker losses, starting at virtual time
// start with an absolute deadline. Cancelling ctx stops the live
// cluster — coordinator and every worker — within BarrierTimeout. The
// returned Report is meaningful even alongside an error: it carries
// the spend, I/O and deployment history accumulated before the
// failure.
func ExecuteDist(ctx context.Context, opts DistOptions, start, deadline units.Seconds) (Report, error) {
	if err := opts.validate(); err != nil {
		return Report{}, err
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 2
	}
	if opts.RestartBudget <= 0 {
		opts.RestartBudget = 8
	}
	if opts.MaxDecisions <= 0 {
		opts.MaxDecisions = 10_000
	}
	if opts.BytesPerVertex <= 0 {
		opts.BytesPerVertex = 64
	}
	if opts.Net == (simnet.Config{}) {
		opts.Net = simnet.DefaultConfig()
	}
	d := &distDriver{
		opts:     &opts,
		evictor:  sim.Evictor{Market: opts.Env.Market},
		deadline: deadline,
		t:        start,
	}
	return d.run(ctx)
}

// distDriver carries the mutable state of one ExecuteDist call.
type distDriver struct {
	opts     *DistOptions
	evictor  sim.Evictor
	deadline units.Seconds
	rep      Report

	t       units.Seconds // virtual clock
	durable int           // newest durable checkpoint superstep (0 = none)
}

func (d *distDriver) emit(e obs.Event) {
	if d.opts.Sink != nil {
		d.opts.Sink.Emit(e)
	}
}

// spend bills a machine-time interval on the market, mirroring the
// in-process driver so obs.Summarize folds the trace to rep.Cost
// bit-exactly.
func (d *distDriver) spend(c cloud.Config, from, to units.Seconds) error {
	cost, err := d.opts.Env.Market.Cost(c, from, to)
	if err != nil {
		return err
	}
	d.rep.Cost += cost
	if d.opts.Sink != nil {
		d.opts.Sink.Emit(obs.Event{Type: obs.EvSpend, T: float64(from),
			Config: c.ID(), USD: float64(cost)})
	}
	return nil
}

func (d *distDriver) run(ctx context.Context) (Report, error) {
	env := d.opts.Env
	for attempt := 0; ; attempt++ {
		d.rep.Decisions++
		if d.rep.Decisions > d.opts.MaxDecisions {
			return d.rep, fmt.Errorf("runtime: exceeded %d decisions (provisioner livelock?)", d.opts.MaxDecisions)
		}
		if err := ctx.Err(); err != nil {
			return d.rep, fmt.Errorf("runtime: dist run cancelled after %d decisions: %w", d.rep.Decisions, err)
		}
		// No live deployment survives a dist decision point (the process
		// set is gone), so Current is always nil and every decision boots
		// fresh.
		st := core.State{Now: d.t, WorkLeft: workLeft(d.opts.TotalSupersteps, d.durable),
			Deadline: d.deadline}
		dec, cs, err := d.decide(env, st)
		if err != nil {
			return d.rep, err
		}
		_ = dec // durability is not optional on the dist plane; see CheckpointEvery
		done, err := d.segment(ctx, cs, attempt)
		if err != nil || done {
			return d.rep, err
		}
	}
}

// decide consults the provisioner, or pins the last-resort
// configuration once the restart budget or slack is exhausted — the
// same §5 fallback the in-process driver takes.
func (d *distDriver) decide(env *core.Env, st core.State) (core.Decision, *core.ConfigStats, error) {
	if d.rep.Restarts < d.opts.RestartBudget && env.Slack(st) > 0 {
		return sim.Decide(env, d.opts.Prov, st, d.opts.Sink)
	}
	if !d.rep.LastResort {
		d.rep.LastResort = true
		d.opts.logf("runtime: dist job %q engaging last-resort %s (restarts=%d/%d, slack=%.0fs)",
			env.Job.Name, env.LRC.Config.ID(), d.rep.Restarts, d.opts.RestartBudget, float64(env.Slack(st)))
	}
	dec, cs := lastResortDecision(env, st, d.opts.Sink)
	return dec, cs, nil
}

// reloadTime prices the parallel checkpoint reload of a fresh process
// set: every worker pulls its share of the vertices from the
// datastore. The dist plane assigns vertices round-robin, so the
// per-worker flows are even to within one vertex.
func (d *distDriver) reloadTime(workers int) units.Seconds {
	cluster, err := simnet.NewCluster(workers, d.opts.Net)
	if err != nil {
		d.opts.logf("runtime: dist reload pricing: %v", err)
		return 0
	}
	vertices := int64(1) << d.opts.Graph.Scale
	flows := make([]simnet.Flow, 0, workers)
	for w := 0; w < workers; w++ {
		n := vertices / int64(workers)
		if int64(w) < vertices%int64(workers) {
			n++
		}
		flows = append(flows, simnet.Flow{Src: simnet.DatastoreNode, Dst: w,
			Bytes: n * d.opts.BytesPerVertex})
	}
	return cluster.SimulateFlows(flows)
}

// segment boots one process set under cs and runs one dist session,
// folding the outcome into the report. It returns done=true when the
// job finished (successfully or not recoverably).
func (d *distDriver) segment(ctx context.Context, cs *core.ConfigStats, attempt int) (bool, error) {
	env := d.opts.Env
	shards := cs.Config.Count

	// Deploy billing mirrors the in-process driver: wait for market
	// availability, boot, then either the profiled input load (fresh
	// start) or the simnet-priced parallel checkpoint redistribution
	// to the new worker count.
	avail, err := env.Market.NextAvailable(cs.Config, d.t)
	if err != nil {
		return false, err
	}
	var ioLoad units.Seconds
	if d.durable > 0 {
		ioLoad = d.reloadTime(shards)
	} else {
		ioLoad = cs.Load
	}
	d.rep.IOTime += ioLoad
	readyAt := avail + cs.Boot + ioLoad
	if err := d.spend(cs.Config, avail, readyAt); err != nil {
		return false, err
	}
	d.t = readyAt
	d.rep.Reconfigs++
	d.rep.ShardCounts = append(d.rep.ShardCounts, shards)

	nextEvict := d.evictor.Next(cs.Config, readyAt)
	secPerStep := units.Seconds(float64(cs.Exec) / float64(d.opts.TotalSupersteps))
	remSteps := d.opts.TotalSupersteps - d.durable
	if remSteps < 1 {
		remSteps = 1
	}
	stepsToEvict := math.MaxInt
	if !math.IsInf(float64(nextEvict), 1) {
		if ratio := float64(nextEvict-d.t) / float64(secPerStep); ratio < 1e12 {
			stepsToEvict = int(ratio)
		}
	}
	if stepsToEvict <= 0 {
		// Evicted before one superstep would complete: not worth booting
		// the cluster at all.
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return false, err
		}
		d.evictAt(nextEvict, cs)
		return false, nil
	}
	evictAfter := 0 // 0 = this segment is not interrupted
	if stepsToEvict < remSteps {
		evictAfter = stepsToEvict
	}

	rep, mon, runErr := d.session(ctx, cs, shards, attempt, evictAfter)
	actual := mon.stepsDone()
	segEnd := d.t + units.Seconds(float64(actual)*float64(secPerStep))

	switch {
	case runErr == nil:
		return d.finish(rep, cs, segEnd, nextEvict, mon)

	case mon.tripped() && ctx.Err() == nil:
		// Injected eviction: the machines ran (and are billed) up to the
		// price crossing; progress past the durable frontier is gone
		// with the processes.
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return false, err
		}
		d.commitDurable(mon)
		d.evictAt(nextEvict, cs)
		return false, nil

	case ctx.Err() != nil:
		d.commitDurable(mon)
		return false, fmt.Errorf("runtime: dist run cancelled mid-session: %w", ctx.Err())

	default:
		var lost *dist.ShardLostError
		if errors.As(runErr, &lost) {
			// A worker actually died (chaos hook, killed process): bill
			// the supersteps that did complete, then go back around —
			// the next decision is free to pick a different worker count
			// and the next session resumes the blobs at that count.
			if err := d.spend(cs.Config, d.t, segEnd); err != nil {
				return false, err
			}
			d.commitDurable(mon)
			d.evictAt(segEnd, cs)
			return false, nil
		}
		return false, runErr
	}
}

// session boots the worker set and runs one coordinator session over
// it. Whatever the outcome, the set is torn down and waited for before
// returning: the next deployment must never race a straggler from
// this one.
func (d *distDriver) session(ctx context.Context, cs *core.ConfigStats, shards, attempt, evictAfter int) (*dist.Report, *distMonitor, error) {
	segCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, &distMonitor{}, fmt.Errorf("runtime: dist coordinator listener: %w", err)
	}
	defer ln.Close()
	ws, err := d.opts.Launcher.Launch(segCtx, ln.Addr().String(), shards, attempt)
	if err != nil {
		return nil, &distMonitor{}, fmt.Errorf("runtime: launching %d workers: %w", shards, err)
	}
	mon := &distMonitor{forward: d.opts.Sink, cancel: cancel, evictAfter: evictAfter}
	d.emit(obs.Event{Type: obs.EvDeploy, T: float64(d.t), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), WorkLeft: workLeft(d.opts.TotalSupersteps, d.durable),
		Proc: strings.Join(ws.IDs(), ","), Reload: d.durable > 0})
	cfg := dist.Config{
		Job:             d.opts.Job,
		Program:         d.opts.Program,
		Graph:           d.opts.Graph,
		Canonical:       true,
		CheckpointEvery: d.opts.CheckpointEvery,
		MaxSupersteps:   d.opts.MaxSupersteps,
		BarrierTimeout:  d.opts.BarrierTimeout,
		Store:           d.opts.Store,
		Sink:            mon,
		Logf:            d.opts.Logf,
	}
	rep, runErr := dist.AcceptAndRun(segCtx, ln, shards, cfg)
	cancel()
	ws.Stop()
	ws.Wait()
	return rep, mon, runErr
}

// evictAt records a deployment-level eviction at absolute time `at`.
func (d *distDriver) evictAt(at units.Seconds, cs *core.ConfigStats) {
	d.t = at
	d.rep.Evictions++
	d.rep.Restarts++
	d.emit(obs.Event{Type: obs.EvEvict, T: float64(at), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), WorkLeft: workLeft(d.opts.TotalSupersteps, d.durable)})
}

// commitDurable folds a session's checkpoint progress into the driver:
// the durable frontier only ever advances (a later session resuming an
// older manifest would have found the newer one first).
func (d *distDriver) commitDurable(mon *distMonitor) {
	durable, ckpts := mon.progress()
	d.rep.Checkpoints += ckpts
	if durable > d.durable {
		d.durable = durable
	}
}

// finish handles a session that completed the job: bill the compute
// and the output write (racing the eviction), clear the checkpoint
// namespace and report.
func (d *distDriver) finish(rep *dist.Report, cs *core.ConfigStats, segEnd, nextEvict units.Seconds, mon *distMonitor) (bool, error) {
	outEnd := segEnd + cs.Save
	if nextEvict < outEnd {
		// Evicted computing the tail or writing the output: the result
		// never became durable. The session's checkpoints did, so the
		// next attempt resumes rather than restarting.
		if err := d.spend(cs.Config, d.t, nextEvict); err != nil {
			return false, err
		}
		d.commitDurable(mon)
		d.evictAt(nextEvict, cs)
		return false, nil
	}
	if err := d.spend(cs.Config, d.t, outEnd); err != nil {
		return false, err
	}
	d.t = outEnd
	d.commitDurable(mon)
	if cerr := dist.ClearJob(d.opts.Store, d.opts.Job); cerr != nil {
		d.opts.logf("runtime: dist checkpoint GC for job %q incomplete: %v", d.opts.Job, cerr)
	}
	d.rep.Values = rep.Values
	d.rep.Stats = rep.Stats
	d.rep.Finished = true
	d.rep.Completion = d.t
	d.rep.MissedDeadline = d.t > d.deadline
	d.emit(obs.Event{Type: obs.EvDone, T: float64(d.t), Job: d.opts.Env.Job.Name,
		Config: cs.Config.ID(), Done: true,
		Missed: d.rep.MissedDeadline, USD: float64(d.rep.Cost)})
	return true, nil
}

// distMonitor is the coordinator sink of one session: it forwards
// events (stamping worker identity onto EvShardEvict), tracks the
// session's superstep and checkpoint progress, and cancels the segment
// context at the injected eviction boundary. The coordinator emits
// EvSuperstep synchronously at the barrier — before sealing that
// boundary's checkpoint — so "evict after N supersteps" is
// deterministic: the session stops before superstep N+1 and the
// checkpoint at N never becomes durable, exactly a machine-set loss at
// that instant.
type distMonitor struct {
	forward    obs.Sink
	cancel     context.CancelFunc
	evictAfter int // cancel after this many supersteps (0 = never)

	mu          sync.Mutex
	steps       int // supersteps completed this session
	durable     int // newest sealed checkpoint superstep this session
	checkpoints int
	evicted     bool
}

func (m *distMonitor) Emit(e obs.Event) {
	switch e.Type {
	case obs.EvSuperstep:
		m.mu.Lock()
		m.steps++
		trip := m.evictAfter > 0 && m.steps >= m.evictAfter && !m.evicted
		if trip {
			m.evicted = true
		}
		m.mu.Unlock()
		if trip {
			m.cancel()
		}
	case obs.EvCheckpoint:
		m.mu.Lock()
		if e.Superstep > m.durable {
			m.durable = e.Superstep
		}
		m.checkpoints++
		m.mu.Unlock()
	}
	if m.forward != nil {
		m.forward.Emit(e)
	}
}

// stepsDone reports the supersteps completed this session.
func (m *distMonitor) stepsDone() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steps
}

// tripped reports whether this monitor cancelled the session at the
// injected eviction boundary.
func (m *distMonitor) tripped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// progress returns the session's durable frontier and checkpoint count.
func (m *distMonitor) progress() (durable, checkpoints int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durable, m.checkpoints
}
