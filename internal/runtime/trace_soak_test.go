package runtime_test

// The price-trace soak: the chaos machinery from chaos_test.go driven
// by the checked-in AWS-style r4-family spot traces under
// testdata/traces/ instead of the per-seed synthetic market. The files
// are sparse spot-price-history change points ingested through
// cloud.ReadTraceCSV — the exact path a real us-east-1 dump takes —
// so this suite proves the runtime survives a fixed, reviewable market
// month, not just whatever the generator drew this run. Nightly runs
// rotate -chaos-seed-base to sweep fresh start offsets and fault
// schedules over the same trace.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hourglass"
	"hourglass/internal/cloud"
	"hourglass/internal/engine"
	"hourglass/internal/faultinject"
	"hourglass/internal/micro"
	"hourglass/internal/partition"
	"hourglass/internal/runtime"
	"hourglass/internal/units"
)

// traceSoakSchedules is deliberately smaller than the synthetic sweep:
// the market is fixed, so the axes left to sweep are start offset and
// storage faults.
const traceSoakSchedules = 12

// loadCheckedInTraces reads the testdata trace set at 60 s resolution
// (LOCF-resampled from the 5-minute change points).
func loadCheckedInTraces(t testing.TB) cloud.TraceSet {
	t.Helper()
	set := cloud.TraceSet{}
	for _, it := range cloud.Catalogue() {
		f, err := os.Open(filepath.Join("testdata", "traces", it.Name+".csv"))
		if err != nil {
			t.Fatalf("checked-in trace: %v", err)
		}
		tr, err := cloud.ReadTraceCSV(f, it.Name, 60)
		f.Close()
		if err != nil {
			t.Fatalf("parsing %s trace: %v", it.Name, err)
		}
		if tr.Duration() < 9*units.Day {
			t.Fatalf("%s trace covers %v, want >= 9 days", it.Name, tr.Duration())
		}
		set[it.Name] = tr
	}
	return set
}

// The soak reuses the harness type from runtime_test.go but builds its
// System over the checked-in market — live and historical both, so the
// eviction model is fitted on the same weather it runs against.
var (
	soakOnce sync.Once
	soakMap  map[string]*harness
	soakErr  error
)

func buildSoakHarnesses(set cloud.TraceSet) (map[string]*harness, error) {
	sys, err := hourglass.New(hourglass.Options{
		Seed:             42,
		LiveTraces:       set,
		HistoricalTraces: set,
	})
	if err != nil {
		return nil, err
	}
	g := undirectedRMAT(9, 7)
	apps := []struct {
		name  string
		kind  hourglass.JobKind
		fresh func() engine.Program
	}{
		{"pagerank", hourglass.PageRank, func() engine.Program { return &engine.PageRank{Iterations: 10} }},
		{"sssp", hourglass.SSSP, func() engine.Program { return &engine.SSSP{Source: 0} }},
		{"wcc", hourglass.GC, func() engine.Program { return &engine.WCC{} }},
	}
	out := map[string]*harness{}
	var part *micro.Partitioning
	for _, a := range apps {
		env, err := sys.Env(a.kind)
		if err != nil {
			return nil, err
		}
		if part == nil {
			counts := map[int]bool{}
			var workerCounts []int
			for i := range env.Stats {
				if n := env.Stats[i].Config.Count; !counts[n] {
					counts[n] = true
					workerCounts = append(workerCounts, n)
				}
			}
			part, err = micro.BuildForConfigs(g, partition.Hash{}, workerCounts, partition.Multilevel{Seed: 1})
			if err != nil {
				return nil, err
			}
		}
		ref, err := engine.Run(g, a.fresh(), engine.Config{Workers: 4, Canonical: true})
		if err != nil {
			return nil, fmt.Errorf("%s reference: %w", a.name, err)
		}
		relDl, err := sys.DeadlineFor(a.kind, 0.5)
		if err != nil {
			return nil, err
		}
		hz, err := sys.Horizon(a.kind)
		if err != nil {
			return nil, err
		}
		out[a.name] = &harness{
			kind: a.kind, sys: sys, env: env, g: g, part: part,
			fresh: a.fresh, total: ref.Stats.Supersteps, ref: ref.Values,
			relDl: relDl, horizon: hz,
		}
	}
	return out, nil
}

func getSoakHarness(t *testing.T, app string) *harness {
	t.Helper()
	soakOnce.Do(func() { soakMap, soakErr = buildSoakHarnesses(loadCheckedInTraces(t)) })
	if soakErr != nil {
		t.Fatalf("soak harness: %v", soakErr)
	}
	h, ok := soakMap[app]
	if !ok {
		t.Fatalf("no soak harness for app %q", app)
	}
	return h
}

// TestTraceSoakMarketHasWeather guards the fixture itself: the
// checked-in month must contain real eviction pressure (spot price
// crossing the on-demand bid) for every instance type, or the soak
// below degenerates into a calm-market test.
func TestTraceSoakMarketHasWeather(t *testing.T) {
	set := loadCheckedInTraces(t)
	for _, it := range cloud.Catalogue() {
		tr := set[it.Name]
		if _, ok := tr.NextCrossing(0, float64(it.OnDemand)); !ok {
			t.Errorf("%s: no spike above on-demand $%.3f in the checked-in trace", it.Name, it.OnDemand)
		}
		stats := cloud.ComputeMarketStats(it, tr)
		if stats.MTTF <= 0 {
			t.Errorf("%s: eviction MTTF not finite", it.Name)
		}
	}
}

// TestTraceSoakEvictionSchedules replays the chaos sweep against the
// checked-in market: seeded start offsets across the ten-day trace,
// storage faults on the checkpoint store, and bit-identical final
// values (or a self-consistent deadline miss) demanded every time.
func TestTraceSoakEvictionSchedules(t *testing.T) {
	apps := []string{"pagerank", "sssp", "wcc"}
	var totalEvictions, totalCheckpoints int

	for i := 0; i < traceSoakSchedules; i++ {
		seed := *chaosSeedBase + int64(9000+i)
		app := apps[i%len(apps)]
		t.Run(fmt.Sprintf("seed=%d/%s", seed, app), func(t *testing.T) {
			h := getSoakHarness(t, app)
			store := faultinject.Wrap(cloud.NewDatastore(), chaosPolicy(seed))

			rng := rand.New(rand.NewSource(seed * 31))
			span := float64(h.horizon - h.relDl)
			if span < 0 {
				span = 0
			}
			start := units.Seconds(rng.Float64() * span)
			deadline := start + h.relDl

			opts := h.options(t, store, fmt.Sprintf("tracesoak/%s/%d", app, seed), h.provisioner(t))
			rep, err := runtime.Execute(context.Background(), opts, start, deadline)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if !rep.Finished {
				t.Fatal("run did not finish (last-resort fallback must always complete)")
			}
			assertBitIdentical(t, h.ref, rep.Values)
			if rep.MissedDeadline != (rep.Completion > deadline) {
				t.Fatalf("miss flag inconsistent with accounting: missed=%v completion=%v deadline=%v",
					rep.MissedDeadline, rep.Completion, deadline)
			}
			totalEvictions += rep.Evictions
			totalCheckpoints += rep.Checkpoints
		})
	}
	if totalCheckpoints == 0 {
		t.Error("no durable checkpoints across the trace soak")
	}
	t.Logf("trace soak: %d evictions, %d checkpoints across %d schedules on the checked-in market",
		totalEvictions, totalCheckpoints, traceSoakSchedules)
}
